#ifndef EAFE_CORE_STATUS_H_
#define EAFE_CORE_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace eafe {

/// Error categories used across the library. Mirrors the minimal set a
/// data-engineering library needs; extend sparingly.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kNotImplemented,
  kInternal,
};

/// Returns a human-readable name for `code` (e.g., "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error outcome for fallible operations. The public API of
/// this library does not throw; functions that can fail return `Status`
/// (or `Result<T>` when they also produce a value).
///
/// Usage:
///   Status s = frame.AddColumn(...);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Modeled after
/// arrow::Result; keeps call sites exception-free.
///
/// Usage:
///   Result<DataFrame> r = ReadCsv(path);
///   if (!r.ok()) return r.status();
///   DataFrame df = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::...;`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; OK if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// The contained value. Terminates the process if this holds an error —
  /// call `ok()` first, or use ValueOr().
  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(payload_));
  }

  /// The contained value, or `fallback` on error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const;

  std::variant<T, Status> payload_;
};

namespace internal {
/// Prints the message and aborts. Out-of-line so Result stays light.
[[noreturn]] void DieWithStatus(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::DieIfError() const {
  if (!ok()) internal::DieWithStatus(std::get<Status>(payload_));
}

/// Propagates an error status from an expression returning Status.
#define EAFE_RETURN_NOT_OK(expr)                    \
  do {                                              \
    ::eafe::Status _eafe_status = (expr);           \
    if (!_eafe_status.ok()) return _eafe_status;    \
  } while (false)

/// Assigns the value of a Result expression or propagates its error.
///   EAFE_ASSIGN_OR_RETURN(auto df, ReadCsv(path));
#define EAFE_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                               \
  if (!result_name.ok()) return result_name.status();       \
  lhs = std::move(result_name).ValueOrDie()
#define EAFE_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define EAFE_ASSIGN_OR_RETURN_NAME(x, y) EAFE_ASSIGN_OR_RETURN_CONCAT(x, y)
#define EAFE_ASSIGN_OR_RETURN(lhs, rexpr)                                    \
  EAFE_ASSIGN_OR_RETURN_IMPL(                                                \
      EAFE_ASSIGN_OR_RETURN_NAME(_eafe_result_, __LINE__), lhs, rexpr)

}  // namespace eafe

#endif  // EAFE_CORE_STATUS_H_
