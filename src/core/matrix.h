#ifndef EAFE_CORE_MATRIX_H_
#define EAFE_CORE_MATRIX_H_

#include <cstddef>
#include <vector>

#include "core/check.h"
#include "core/status.h"

namespace eafe {

class Rng;

/// Dense row-major matrix of doubles. Deliberately minimal: just what the
/// neural policies, MLPs, and Gaussian-process solver need. Heavy linear
/// algebra is out of scope; sizes in this library are small (hundreds).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer-style data; all rows must be equal
  /// length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Matrix with i.i.d. Normal(0, stddev) entries.
  static Matrix RandomNormal(size_t rows, size_t cols, double stddev,
                             Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& operator()(size_t r, size_t c) {
    EAFE_CHECK_LT(r, rows_);
    EAFE_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    EAFE_CHECK_LT(r, rows_);
    EAFE_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Pointer to the start of row r.
  const double* row(size_t r) const { return data_.data() + r * cols_; }
  double* row(size_t r) { return data_.data() + r * cols_; }

  Matrix Transpose() const;

  /// this * other. Dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// this * v for a column vector v (v.size() == cols()).
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  /// Elementwise operations (shapes must match).
  Matrix Add(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;
  Matrix Hadamard(const Matrix& other) const;
  Matrix Scale(double factor) const;

  /// In-place axpy: this += alpha * other.
  void AddInPlace(const Matrix& other, double alpha = 1.0);

  /// Frobenius norm squared.
  double SquaredNorm() const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Cholesky factorization A = L L^T for a symmetric positive-definite A.
/// Returns the lower-triangular L, or FailedPrecondition if A is not SPD
/// (within jitter tolerance).
Result<Matrix> Cholesky(const Matrix& a);

/// Solves A x = b given the Cholesky factor L of A (forward + backward
/// substitution).
std::vector<double> CholeskySolve(const Matrix& l,
                                  const std::vector<double>& b);

/// Dot product; sizes must match.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace eafe

#endif  // EAFE_CORE_MATRIX_H_
