#include "core/flags.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "core/check.h"
#include "core/string_util.h"

namespace eafe {

FlagParser& FlagParser::AddString(const std::string& name,
                                  const std::string& def,
                                  const std::string& help) {
  EAFE_CHECK(!flags_.count(name));
  flags_[name] = {Type::kString, def, help};
  order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::AddInt(const std::string& name, int64_t def,
                               const std::string& help) {
  EAFE_CHECK(!flags_.count(name));
  flags_[name] = {Type::kInt, std::to_string(def), help};
  order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::AddDouble(const std::string& name, double def,
                                  const std::string& help) {
  EAFE_CHECK(!flags_.count(name));
  flags_[name] = {Type::kDouble, StrFormat("%g", def), help};
  order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::AddBool(const std::string& name, bool def,
                                const std::string& help) {
  EAFE_CHECK(!flags_.count(name));
  flags_[name] = {Type::kBool, def ? "true" : "false", help};
  order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::AddThreads() {
  const int64_t hardware = std::max<int64_t>(
      static_cast<int64_t>(std::thread::hardware_concurrency()), 1);
  return AddInt("threads", hardware,
                "worker threads for evaluation/CV/forest parallelism "
                "(1 = serial)");
}

Status FlagParser::SetValue(const std::string& name,
                            const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  switch (it->second.type) {
    case Type::kInt: {
      auto parsed = ParseInt(value);
      if (!parsed.ok()) return parsed.status();
      break;
    }
    case Type::kDouble: {
      auto parsed = ParseDouble(value);
      if (!parsed.ok()) return parsed.status();
      break;
    }
    case Type::kBool: {
      const std::string lower = ToLower(value);
      if (lower != "true" && lower != "false" && lower != "1" &&
          lower != "0") {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got " + value);
      }
      break;
    }
    case Type::kString:
      break;
  }
  it->second.value = value;
  return Status::OK();
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage(argv[0]).c_str(), stdout);
      return Status::NotFound("help requested");
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      EAFE_RETURN_NOT_OK(SetValue(arg.substr(0, eq), arg.substr(eq + 1)));
      continue;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + arg);
    }
    if (it->second.type == Type::kBool) {
      it->second.value = "true";
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + arg + " needs a value");
    }
    EAFE_RETURN_NOT_OK(SetValue(arg, argv[++i]));
  }
  return Status::OK();
}

std::string FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  EAFE_CHECK(it != flags_.end());
  return it->second.value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  auto it = flags_.find(name);
  EAFE_CHECK(it != flags_.end() && it->second.type == Type::kInt);
  return ParseInt(it->second.value).ValueOrDie();
}

double FlagParser::GetDouble(const std::string& name) const {
  auto it = flags_.find(name);
  EAFE_CHECK(it != flags_.end() && it->second.type == Type::kDouble);
  return ParseDouble(it->second.value).ValueOrDie();
}

bool FlagParser::GetBool(const std::string& name) const {
  auto it = flags_.find(name);
  EAFE_CHECK(it != flags_.end() && it->second.type == Type::kBool);
  const std::string lower = ToLower(it->second.value);
  return lower == "true" || lower == "1";
}

std::string FlagParser::Usage(const std::string& program) const {
  std::string usage = "Usage: " + program + " [flags]\n";
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    usage += StrFormat("  --%-24s %s (default: %s)\n", name.c_str(),
                       flag.help.c_str(), flag.value.c_str());
  }
  return usage;
}

}  // namespace eafe
