#include "core/rng.h"

#include <cmath>

#include "core/check.h"

namespace eafe {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  EAFE_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  EAFE_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double lambda) {
  EAFE_CHECK_GT(lambda, 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::Gamma(double shape) {
  EAFE_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang augmentation).
    const double g = Gamma(shape + 1.0);
    double u;
    do {
      u = Uniform();
    } while (u <= 0.0);
    return g * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  EAFE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    EAFE_CHECK_GE(w, 0.0);
    total += w;
  }
  EAFE_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(&perm);
  return perm;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  EAFE_CHECK_LE(k, n);
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformInt(static_cast<uint64_t>(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace eafe
