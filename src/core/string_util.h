#ifndef EAFE_CORE_STRING_UTIL_H_
#define EAFE_CORE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace eafe {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Joins parts with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Strict double parse of the full token; error on trailing garbage.
Result<double> ParseDouble(std::string_view token);

/// Strict integer parse of the full token.
Result<int64_t> ParseInt(std::string_view token);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lowercases ASCII.
std::string ToLower(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace eafe

#endif  // EAFE_CORE_STRING_UTIL_H_
