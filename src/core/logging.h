#ifndef EAFE_CORE_LOGGING_H_
#define EAFE_CORE_LOGGING_H_

#include <string>

namespace eafe {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes "[LEVEL] message\n" to stderr if `level` passes the filter.
void Log(LogLevel level, const std::string& message);

/// printf-style logging helpers.
void LogDebug(const char* format, ...) __attribute__((format(printf, 1, 2)));
void LogInfo(const char* format, ...) __attribute__((format(printf, 1, 2)));
void LogWarning(const char* format, ...) __attribute__((format(printf, 1, 2)));
void LogError(const char* format, ...) __attribute__((format(printf, 1, 2)));

}  // namespace eafe

#endif  // EAFE_CORE_LOGGING_H_
