#include "core/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace eafe {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

Result<double> ParseDouble(std::string_view token) {
  const std::string buffer(Trim(token));
  if (buffer.empty()) {
    return Status::InvalidArgument("empty token is not a double");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("cannot parse double: '" + buffer + "'");
  }
  return value;
}

Result<int64_t> ParseInt(std::string_view token) {
  const std::string buffer(Trim(token));
  if (buffer.empty()) {
    return Status::InvalidArgument("empty token is not an integer");
  }
  errno = 0;
  char* end = nullptr;
  const int64_t value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("cannot parse integer: '" + buffer + "'");
  }
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace eafe
