#include "core/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace eafe {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void LogV(LogLevel level, const char* format, va_list args) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s] ", LevelName(level));
  std::vfprintf(stderr, format, args);
  std::fputc('\n', stderr);
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

#define EAFE_DEFINE_LOG_FN(Name, Level)      \
  void Name(const char* format, ...) {       \
    va_list args;                            \
    va_start(args, format);                  \
    LogV(Level, format, args);               \
    va_end(args);                            \
  }

EAFE_DEFINE_LOG_FN(LogDebug, LogLevel::kDebug)
EAFE_DEFINE_LOG_FN(LogInfo, LogLevel::kInfo)
EAFE_DEFINE_LOG_FN(LogWarning, LogLevel::kWarning)
EAFE_DEFINE_LOG_FN(LogError, LogLevel::kError)

#undef EAFE_DEFINE_LOG_FN

}  // namespace eafe
