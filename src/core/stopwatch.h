#ifndef EAFE_CORE_STOPWATCH_H_
#define EAFE_CORE_STOPWATCH_H_

#include <chrono>

namespace eafe {

/// Monotonic wall-clock timer for the experiment harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace eafe

#endif  // EAFE_CORE_STOPWATCH_H_
