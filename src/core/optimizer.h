#ifndef EAFE_CORE_OPTIMIZER_H_
#define EAFE_CORE_OPTIMIZER_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/check.h"

namespace eafe {

/// Adam optimizer state over a flat parameter vector (Kingma & Ba, 2014).
/// The paper trains both the RNN agents and the FPE classifier with Adam;
/// this single implementation serves the MLP, ResNet, linear models, and
/// policy networks.
class Adam {
 public:
  struct Options {
    double learning_rate = 0.01;  ///< Paper's default for the RL framework.
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;  ///< Decoupled L2 (AdamW-style).
  };

  Adam() : Adam(Options{}) {}
  explicit Adam(const Options& options) : options_(options) {}

  const Options& options() const { return options_; }
  void set_learning_rate(double lr) { options_.learning_rate = lr; }

  /// Applies one update: params -= lr * m_hat / (sqrt(v_hat) + eps).
  /// `params` and `grads` must be the same size across calls.
  void Step(std::vector<double>* params, const std::vector<double>& grads) {
    EAFE_CHECK_EQ(params->size(), grads.size());
    if (m_.size() != params->size()) {
      m_.assign(params->size(), 0.0);
      v_.assign(params->size(), 0.0);
      t_ = 0;
    }
    ++t_;
    const double bias1 = 1.0 - std::pow(options_.beta1, t_);
    const double bias2 = 1.0 - std::pow(options_.beta2, t_);
    for (size_t i = 0; i < params->size(); ++i) {
      double g = grads[i];
      m_[i] = options_.beta1 * m_[i] + (1.0 - options_.beta1) * g;
      v_[i] = options_.beta2 * v_[i] + (1.0 - options_.beta2) * g * g;
      const double m_hat = m_[i] / bias1;
      const double v_hat = v_[i] / bias2;
      (*params)[i] -=
          options_.learning_rate *
          (m_hat / (std::sqrt(v_hat) + options_.epsilon) +
           options_.weight_decay * (*params)[i]);
    }
  }

  void Reset() {
    m_.clear();
    v_.clear();
    t_ = 0;
  }

  int64_t step_count() const { return t_; }

 private:
  Options options_;
  std::vector<double> m_;
  std::vector<double> v_;
  int64_t t_ = 0;
};

}  // namespace eafe

#endif  // EAFE_CORE_OPTIMIZER_H_
