#include "core/matrix.h"

#include <cmath>

#include "core/rng.h"

namespace eafe {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    EAFE_CHECK_EQ(rows[r].size(), m.cols_);
    for (size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::RandomNormal(size_t rows, size_t cols, double stddev,
                            Rng* rng) {
  Matrix m(rows, cols);
  for (double& x : m.data_) x = rng->Normal(0.0, stddev);
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  EAFE_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.row(k);
      double* orow = out.row(i);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(
    const std::vector<double>& v) const {
  EAFE_CHECK_EQ(cols_, v.size());
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* rp = row(r);
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += rp[c] * v[c];
    out[r] = sum;
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  EAFE_CHECK_EQ(rows_, other.rows_);
  EAFE_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  EAFE_CHECK_EQ(rows_, other.rows_);
  EAFE_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  EAFE_CHECK_EQ(rows_, other.rows_);
  EAFE_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double factor) const {
  Matrix out = *this;
  for (double& x : out.data_) x *= factor;
  return out;
}

void Matrix::AddInPlace(const Matrix& other, double alpha) {
  EAFE_CHECK_EQ(rows_, other.rows_);
  EAFE_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

double Matrix::SquaredNorm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return sum;
}

Result<Matrix> Cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::FailedPrecondition(
          "matrix is not positive definite (pivot <= 0)");
    }
    l(j, j) = std::sqrt(diag);
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l(j, j);
    }
  }
  return l;
}

std::vector<double> CholeskySolve(const Matrix& l,
                                  const std::vector<double>& b) {
  const size_t n = l.rows();
  EAFE_CHECK_EQ(n, b.size());
  // Forward: L y = b.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Backward: L^T x = y.
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  EAFE_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace eafe
