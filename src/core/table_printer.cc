#include "core/table_printer.h"

#include "core/check.h"
#include "core/string_util.h"

namespace eafe {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  EAFE_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  EAFE_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    line += "\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print(std::FILE* out) const {
  std::fputs(ToString().c_str(), out);
}

}  // namespace eafe
