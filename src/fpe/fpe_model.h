#ifndef EAFE_FPE_FPE_MODEL_H_
#define EAFE_FPE_FPE_MODEL_H_

#include <memory>
#include <vector>

#include "core/stats.h"
#include "core/status.h"
#include "fpe/labeling.h"
#include "hashing/sample_compressor.h"
#include "ml/linear.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"

namespace eafe::fpe {

/// The Feature Pre-Evaluation model C_D (Eq. 4): a fixed-size feature
/// representation feeding a binary classifier that predicts whether a
/// candidate feature is effective for the downstream task. Pre-trained
/// offline on public datasets and reused across target datasets — the
/// core device by which E-AFE avoids expensive downstream evaluation of
/// every generated feature.
///
/// The paper's representation is the weighted-MinHash signature
/// (kSignature). As an extension, the model can instead (or additionally)
/// consume the statistical meta-feature vector of the related work
/// (ExploreKit/LFE-style; data/meta_features.h) — `bench/
/// fpe_input_ablation` compares the three.
class FpeModel {
 public:
  enum class ClassifierKind { kLogistic, kMlp, kRandomForest };

  enum class InputRepresentation {
    kSignature,     ///< MinHash signature only (the paper's design).
    kMetaFeatures,  ///< Statistical meta-features only.
    kCombined,      ///< Signature concatenated with meta-features.
  };

  struct Options {
    hashing::CompressorOptions compressor;
    ClassifierKind classifier = ClassifierKind::kLogistic;
    InputRepresentation input = InputRepresentation::kSignature;
    /// Oversample the minority class to this positive fraction when
    /// training (0 disables rebalancing). Feature-validness labels are
    /// heavily skewed toward 0, and the paper optimizes for recall.
    double rebalance_positive_fraction = 0.5;
    size_t classifier_epochs = 120;
    uint64_t seed = 29;
  };

  FpeModel() : FpeModel(Options()) {}
  explicit FpeModel(const Options& options);

  /// Compresses each labeled feature and fits the binary classifier.
  Status Train(const std::vector<LabeledFeature>& features);

  /// P(feature is effective) from the compressed representation.
  /// Requires a trained model.
  Result<double> PredictProbability(const std::vector<double>& values) const;

  /// 1 iff PredictProbability >= 0.5.
  Result<int> PredictLabel(const std::vector<double>& values) const;

  /// Precision/recall/F1 of the model on held-out labeled features
  /// (Eq. 5).
  Result<stats::BinaryCounts> Evaluate(
      const std::vector<LabeledFeature>& features) const;

  bool trained() const { return trained_; }
  const Options& options() const { return options_; }
  const hashing::SampleCompressor& compressor() const { return compressor_; }

  /// Width of the classifier's input vector under the current options.
  size_t InputDimension() const;

  // Persistence support. The text v1 codec (fpe/serialization.h) covers
  // logistic models; the binary container (src/serve/model_store.h)
  // additionally serializes MLP-backed models.
  const ml::LogisticRegression& logistic_classifier() const {
    return logistic_;
  }
  const ml::Mlp& mlp_classifier() const { return mlp_; }
  /// Marks the model trained with a restored classifier. The options
  /// (including the compressor) must already describe the saved model.
  Status RestoreLogistic(ml::LogisticRegression classifier);
  /// Counterpart of RestoreLogistic for the MLP classifier kind.
  Status RestoreMlp(ml::Mlp classifier);

 private:
  /// The classifier input vector for one feature column.
  Result<std::vector<double>> BuildInput(
      const std::vector<double>& values) const;

  /// Builds the input frame (one row per feature).
  Result<data::DataFrame> SignatureFrame(
      const std::vector<LabeledFeature>& features) const;

  Options options_;
  hashing::SampleCompressor compressor_;
  ml::LogisticRegression logistic_;
  ml::Mlp mlp_;
  ml::RandomForest forest_;
  bool trained_ = false;
};

}  // namespace eafe::fpe

#endif  // EAFE_FPE_FPE_MODEL_H_
