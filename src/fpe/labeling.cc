#include "fpe/labeling.h"

namespace eafe::fpe {

Result<std::vector<LabeledFeature>> LabelFeatures(
    const data::Dataset& dataset, const ml::TaskEvaluator& evaluator,
    double threshold) {
  EAFE_RETURN_NOT_OK(dataset.Validate());
  std::vector<LabeledFeature> out;
  const size_t num_features = dataset.features.num_columns();
  if (num_features < 2) return out;  // No residual dataset to compare.

  EAFE_ASSIGN_OR_RETURN(double base_score, evaluator.Score(dataset));
  out.reserve(num_features);
  for (size_t j = 0; j < num_features; ++j) {
    data::Dataset residual = dataset;
    EAFE_RETURN_NOT_OK(residual.features.DropColumn(j));
    EAFE_ASSIGN_OR_RETURN(double residual_score, evaluator.Score(residual));
    LabeledFeature feature;
    feature.dataset_name = dataset.name;
    feature.feature_name = dataset.features.column(j).name();
    feature.task = dataset.task;
    feature.values = dataset.features.column(j).values();
    feature.score_gain = base_score - residual_score;
    feature.label = feature.score_gain > threshold ? 1 : 0;
    out.push_back(std::move(feature));
  }
  return out;
}

Result<std::vector<LabeledFeature>> LabelFeatureCollection(
    const std::vector<data::Dataset>& datasets,
    const ml::TaskEvaluator& evaluator, double threshold) {
  std::vector<LabeledFeature> all;
  for (const data::Dataset& dataset : datasets) {
    EAFE_ASSIGN_OR_RETURN(std::vector<LabeledFeature> features,
                          LabelFeatures(dataset, evaluator, threshold));
    for (LabeledFeature& f : features) all.push_back(std::move(f));
  }
  return all;
}

void RelabelWithThreshold(std::vector<LabeledFeature>* features,
                          double threshold) {
  for (LabeledFeature& f : *features) {
    f.label = f.score_gain > threshold ? 1 : 0;
  }
}

}  // namespace eafe::fpe
