#include "fpe/serialization.h"

#include <fstream>
#include <sstream>

#include "core/string_util.h"

namespace eafe::fpe {
namespace {

constexpr char kHeader[] = "eafe-fpe-model v1";

void AppendVector(std::string* out, const std::string& key,
                  const std::vector<double>& values) {
  *out += key;
  for (double v : values) {
    *out += ' ';
    *out += StrFormat("%.17g", v);
  }
  *out += '\n';
}

Result<std::vector<double>> ParseVector(const std::string& line,
                                        const std::string& key) {
  if (!StartsWith(line, key + " ")) {
    return Status::InvalidArgument("expected line starting with '" + key +
                                   "', got '" + line + "'");
  }
  std::vector<double> values;
  for (const std::string& token :
       Split(line.substr(key.size() + 1), ' ')) {
    if (Trim(token).empty()) continue;
    EAFE_ASSIGN_OR_RETURN(double value, ParseDouble(token));
    values.push_back(value);
  }
  return values;
}

Result<std::string> ParseKeyValue(const std::string& line,
                                  const std::string& key) {
  if (!StartsWith(line, key + " ")) {
    return Status::InvalidArgument("expected line starting with '" + key +
                                   "', got '" + line + "'");
  }
  return std::string(Trim(line.substr(key.size() + 1)));
}

}  // namespace

Result<std::string> SerializeFpeModel(const FpeModel& model) {
  if (!model.trained()) {
    return Status::FailedPrecondition("cannot serialize an untrained model");
  }
  if (model.options().classifier != FpeModel::ClassifierKind::kLogistic) {
    return Status::NotImplemented(
        "the v1 text format only covers logistic FPE classifiers; save "
        "MLP-backed models through serve::SaveModel (binary container)");
  }
  const FpeModel::Options& options = model.options();
  const ml::LogisticRegression& classifier = model.logistic_classifier();

  std::string out = std::string(kHeader) + "\n";
  out += "scheme " +
         hashing::MinHashSchemeToString(options.compressor.scheme) + "\n";
  out += StrFormat("dimension %zu\n", options.compressor.dimension);
  out += StrFormat("extra_uniform_slots %zu\n",
                   options.compressor.extra_uniform_slots);
  out += StrFormat("sort_signature %d\n",
                   options.compressor.sort_signature ? 1 : 0);
  out += StrFormat("compressor_seed %llu\n",
                   static_cast<unsigned long long>(options.compressor.seed));
  out += StrFormat("input %d\n", static_cast<int>(options.input));
  out += StrFormat("num_classes %zu\n", classifier.num_classes());
  AppendVector(&out, "scaler_means", classifier.scaler().means());
  AppendVector(&out, "scaler_scales", classifier.scaler().scales());
  out += StrFormat("num_heads %zu\n", classifier.all_weights().size());
  for (size_t h = 0; h < classifier.all_weights().size(); ++h) {
    AppendVector(&out, StrFormat("weights_%zu", h),
                 classifier.all_weights()[h]);
  }
  return out;
}

Result<FpeModel> DeserializeFpeModel(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  auto next_line = [&]() -> Result<std::string> {
    while (std::getline(in, line)) {
      if (!Trim(line).empty()) return line;
    }
    return Status::InvalidArgument("unexpected end of FPE model data");
  };

  EAFE_ASSIGN_OR_RETURN(std::string header, next_line());
  if (Trim(header) != kHeader) {
    return Status::InvalidArgument("bad FPE model header: " + header);
  }

  FpeModel::Options options;
  EAFE_ASSIGN_OR_RETURN(std::string line_text, next_line());
  EAFE_ASSIGN_OR_RETURN(std::string scheme_name,
                        ParseKeyValue(line_text, "scheme"));
  EAFE_ASSIGN_OR_RETURN(options.compressor.scheme,
                        hashing::MinHashSchemeFromString(scheme_name));

  EAFE_ASSIGN_OR_RETURN(line_text, next_line());
  EAFE_ASSIGN_OR_RETURN(std::string value,
                        ParseKeyValue(line_text, "dimension"));
  EAFE_ASSIGN_OR_RETURN(int64_t dimension, ParseInt(value));
  options.compressor.dimension = static_cast<size_t>(dimension);

  EAFE_ASSIGN_OR_RETURN(line_text, next_line());
  EAFE_ASSIGN_OR_RETURN(value,
                        ParseKeyValue(line_text, "extra_uniform_slots"));
  EAFE_ASSIGN_OR_RETURN(int64_t extra, ParseInt(value));
  options.compressor.extra_uniform_slots = static_cast<size_t>(extra);

  EAFE_ASSIGN_OR_RETURN(line_text, next_line());
  EAFE_ASSIGN_OR_RETURN(value, ParseKeyValue(line_text, "sort_signature"));
  EAFE_ASSIGN_OR_RETURN(int64_t sort_flag, ParseInt(value));
  options.compressor.sort_signature = sort_flag != 0;

  EAFE_ASSIGN_OR_RETURN(line_text, next_line());
  EAFE_ASSIGN_OR_RETURN(value, ParseKeyValue(line_text, "compressor_seed"));
  EAFE_ASSIGN_OR_RETURN(int64_t seed, ParseInt(value));
  options.compressor.seed = static_cast<uint64_t>(seed);

  EAFE_ASSIGN_OR_RETURN(line_text, next_line());
  EAFE_ASSIGN_OR_RETURN(value, ParseKeyValue(line_text, "input"));
  EAFE_ASSIGN_OR_RETURN(int64_t input_mode, ParseInt(value));
  if (input_mode < 0 || input_mode > 2) {
    return Status::InvalidArgument("bad input-representation id");
  }
  options.input =
      static_cast<FpeModel::InputRepresentation>(input_mode);

  EAFE_ASSIGN_OR_RETURN(line_text, next_line());
  EAFE_ASSIGN_OR_RETURN(value, ParseKeyValue(line_text, "num_classes"));
  EAFE_ASSIGN_OR_RETURN(int64_t num_classes, ParseInt(value));

  EAFE_ASSIGN_OR_RETURN(line_text, next_line());
  EAFE_ASSIGN_OR_RETURN(std::vector<double> means,
                        ParseVector(line_text, "scaler_means"));
  EAFE_ASSIGN_OR_RETURN(line_text, next_line());
  EAFE_ASSIGN_OR_RETURN(std::vector<double> scales,
                        ParseVector(line_text, "scaler_scales"));

  EAFE_ASSIGN_OR_RETURN(line_text, next_line());
  EAFE_ASSIGN_OR_RETURN(value, ParseKeyValue(line_text, "num_heads"));
  EAFE_ASSIGN_OR_RETURN(int64_t num_heads, ParseInt(value));
  std::vector<std::vector<double>> weights;
  for (int64_t h = 0; h < num_heads; ++h) {
    EAFE_ASSIGN_OR_RETURN(line_text, next_line());
    EAFE_ASSIGN_OR_RETURN(std::vector<double> w,
                          ParseVector(line_text, StrFormat("weights_%zu",
                                                           static_cast<size_t>(h))));
    weights.push_back(std::move(w));
  }

  data::StandardScaler scaler;
  EAFE_RETURN_NOT_OK(scaler.Restore(std::move(means), std::move(scales)));
  ml::LogisticRegression classifier;
  EAFE_RETURN_NOT_OK(classifier.RestoreFitted(
      std::move(scaler), std::move(weights),
      static_cast<size_t>(num_classes)));

  FpeModel model(options);
  EAFE_RETURN_NOT_OK(model.RestoreLogistic(std::move(classifier)));
  return model;
}

Status SaveFpeModel(const FpeModel& model, const std::string& path) {
  EAFE_ASSIGN_OR_RETURN(std::string text, SerializeFpeModel(model));
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << text;
  if (!out.good()) {
    return Status::IoError("error while writing '" + path + "'");
  }
  return Status::OK();
}

Result<FpeModel> LoadFpeModel(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeFpeModel(buffer.str());
}

}  // namespace eafe::fpe
