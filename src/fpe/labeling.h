#ifndef EAFE_FPE_LABELING_H_
#define EAFE_FPE_LABELING_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "data/dataframe.h"
#include "ml/evaluator.h"

namespace eafe::fpe {

/// One feature example for the Feature-Validness task (Eq. 3): the raw
/// column values, the leave-one-out score gain A_0 - A_j, and the derived
/// binary label (1 = effective: removing the feature costs more than
/// `threshold`).
struct LabeledFeature {
  std::string dataset_name;
  std::string feature_name;
  data::TaskType task = data::TaskType::kClassification;
  std::vector<double> values;
  double score_gain = 0.0;
  int label = 0;
};

/// Labels every feature of `dataset` by the paper's leave-one-feature-out
/// protocol: A_0 = evaluator score on the full dataset, A_j = score with
/// feature j removed, label_j = 1 iff A_0 - A_j > threshold. Skips
/// datasets with a single feature (no residual dataset exists).
Result<std::vector<LabeledFeature>> LabelFeatures(
    const data::Dataset& dataset, const ml::TaskEvaluator& evaluator,
    double threshold);

/// Labels features across a collection; failures on individual datasets
/// propagate. Gains are computed per dataset.
Result<std::vector<LabeledFeature>> LabelFeatureCollection(
    const std::vector<data::Dataset>& datasets,
    const ml::TaskEvaluator& evaluator, double threshold);

/// Re-derives labels for an existing gain set under a new threshold
/// (used by the thre sensitivity study, Fig. 6/8, without re-running the
/// expensive leave-one-out evaluations).
void RelabelWithThreshold(std::vector<LabeledFeature>* features,
                          double threshold);

}  // namespace eafe::fpe

#endif  // EAFE_FPE_LABELING_H_
