#ifndef EAFE_FPE_SERIALIZATION_H_
#define EAFE_FPE_SERIALIZATION_H_

#include <string>

#include "core/status.h"
#include "fpe/fpe_model.h"

namespace eafe::fpe {

/// Persistence for trained FPE models. The whole point of the FPE design
/// is amortization — pre-train once on public datasets, deploy against
/// any number of target datasets — so a saved model is the natural unit
/// of deployment.
///
/// The format is a line-oriented text file ("eafe-fpe-model v1" header,
/// key/value lines, full-precision doubles), deliberately trivial to
/// inspect and diff. It is the *legacy* codec: only the logistic
/// classifier kind is serializable here, and Save returns NotImplemented
/// for an MLP-backed model. New code saves through the versioned binary
/// container in src/serve/model_store.h, which covers logistic and MLP
/// classifiers alike; serve::LoadModel still reads v1 text files, so
/// existing saved models keep working.

/// Serializes a trained model to a string.
Result<std::string> SerializeFpeModel(const FpeModel& model);

/// Reconstructs a model from SerializeFpeModel output.
Result<FpeModel> DeserializeFpeModel(const std::string& text);

/// File convenience wrappers.
Status SaveFpeModel(const FpeModel& model, const std::string& path);
Result<FpeModel> LoadFpeModel(const std::string& path);

}  // namespace eafe::fpe

#endif  // EAFE_FPE_SERIALIZATION_H_
