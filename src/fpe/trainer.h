#ifndef EAFE_FPE_TRAINER_H_
#define EAFE_FPE_TRAINER_H_

#include <vector>

#include "core/status.h"
#include "fpe/fpe_model.h"
#include "fpe/labeling.h"
#include "ml/evaluator.h"

namespace eafe::fpe {

/// Options for Algorithm 1: training the FPE model and selecting the best
/// (MinHash scheme, signature dimension) by validation recall (Eq. 6).
struct FpeTrainingOptions {
  /// Candidate signature dimensions d (the vector d of Algorithm 1).
  std::vector<size_t> dimensions = {16, 32, 48, 64};
  /// Candidate hash families; empty means all weighted schemes + plain.
  std::vector<hashing::MinHashScheme> schemes;
  /// Score-gain threshold thre for labels (paper default 0.01).
  double threshold = 0.01;
  /// Training-set denoising: negatives whose gain lies within
  /// `negative_margin` below the threshold are dropped from the training
  /// split (their labels are cross-validation coin flips). Validation
  /// keeps every feature so recall stays honest. 0 disables.
  double negative_margin = 0.015;
  /// Fraction of labeled features held out for recall validation.
  double validation_fraction = 0.3;
  FpeModel::ClassifierKind classifier = FpeModel::ClassifierKind::kLogistic;
  /// Downstream task configuration used for leave-one-out labeling.
  ml::EvaluatorOptions evaluator;
  uint64_t seed = 17;
  /// Additional pre-labeled features merged into the pool before the
  /// train/validation split. Used to augment the leave-one-out labels
  /// with generated-feature examples (afe::PretrainFpe), aligning the
  /// classifier's training distribution with its search-time inputs.
  std::vector<LabeledFeature> extra_labeled;
};

/// Validation metrics for one (scheme, dimension) candidate of the sweep.
struct FpeCandidateMetrics {
  hashing::MinHashScheme scheme = hashing::MinHashScheme::kCcws;
  size_t dimension = 0;
  double recall = 0.0;
  double precision = 0.0;
  double f1 = 0.0;
};

/// Output of Algorithm 1: the selected model plus the full sweep (used by
/// the Q6 hash-family study and Fig. 8's dimension sensitivity).
struct FpeTrainingResult {
  FpeModel model;
  FpeCandidateMetrics selected;
  std::vector<FpeCandidateMetrics> sweep;
  size_t num_labeled_features = 0;
  size_t num_positive_features = 0;
  /// Labeled features (with gains) retained for threshold re-sweeps.
  std::vector<LabeledFeature> training_features;
  std::vector<LabeledFeature> validation_features;
};

/// Algorithm 1 end to end: leave-one-out labeling over the public
/// datasets, a sweep over (scheme, d), and selection of the
/// recall-maximizing candidate subject to precision > 0 (Eq. 6). When
/// every candidate violates the constraints, the highest-recall candidate
/// is returned with a warning rather than failing.
Result<FpeTrainingResult> TrainFpeModel(
    const std::vector<data::Dataset>& public_datasets,
    const FpeTrainingOptions& options = {});

/// Re-trains a model on pre-labeled features for one fixed candidate —
/// the inner loop of the sweep, exposed for the hyperparameter benches.
Result<FpeCandidateMetrics> EvaluateCandidate(
    const std::vector<LabeledFeature>& train,
    const std::vector<LabeledFeature>& validation,
    hashing::MinHashScheme scheme, size_t dimension,
    FpeModel::ClassifierKind classifier, uint64_t seed, FpeModel* model_out);

}  // namespace eafe::fpe

#endif  // EAFE_FPE_TRAINER_H_
