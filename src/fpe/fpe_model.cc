#include "fpe/fpe_model.h"

#include <algorithm>

#include "core/check.h"
#include "core/rng.h"
#include "core/string_util.h"
#include "data/meta_features.h"

namespace eafe::fpe {

FpeModel::FpeModel(const Options& options) : options_(options) {
  // The classifier needs an unbiased view of the value distribution in
  // addition to the weight-biased consistent sample; pair every CWS slot
  // with a uniform slot unless the caller chose otherwise.
  if (options_.compressor.extra_uniform_slots == 0) {
    options_.compressor.extra_uniform_slots = options_.compressor.dimension;
  }
  compressor_ = hashing::SampleCompressor(options_.compressor);
}

size_t FpeModel::InputDimension() const {
  const size_t signature = options_.compressor.dimension +
                           options_.compressor.extra_uniform_slots;
  switch (options_.input) {
    case InputRepresentation::kSignature:
      return signature;
    case InputRepresentation::kMetaFeatures:
      return data::kNumMetaFeatures;
    case InputRepresentation::kCombined:
      return signature + data::kNumMetaFeatures;
  }
  return signature;
}

Result<std::vector<double>> FpeModel::BuildInput(
    const std::vector<double>& values) const {
  std::vector<double> input;
  if (options_.input != InputRepresentation::kMetaFeatures) {
    EAFE_ASSIGN_OR_RETURN(input, compressor_.Compress(values));
  }
  if (options_.input != InputRepresentation::kSignature) {
    EAFE_ASSIGN_OR_RETURN(std::vector<double> meta,
                          data::ComputeMetaFeatures(values));
    input.insert(input.end(), meta.begin(), meta.end());
  }
  EAFE_CHECK_EQ(input.size(), InputDimension());
  return input;
}

Result<data::DataFrame> FpeModel::SignatureFrame(
    const std::vector<LabeledFeature>& features) const {
  const size_t d = InputDimension();
  std::vector<std::vector<double>> columns(d);
  for (auto& col : columns) col.reserve(features.size());
  for (const LabeledFeature& feature : features) {
    EAFE_ASSIGN_OR_RETURN(std::vector<double> input,
                          BuildInput(feature.values));
    for (size_t j = 0; j < d; ++j) columns[j].push_back(input[j]);
  }
  data::DataFrame frame;
  for (size_t j = 0; j < d; ++j) {
    EAFE_RETURN_NOT_OK(frame.AddColumn(
        data::Column(StrFormat("s%zu", j), std::move(columns[j]))));
  }
  return frame;
}

Status FpeModel::Train(const std::vector<LabeledFeature>& features) {
  if (features.size() < 4) {
    return Status::InvalidArgument(
        "FPE training needs at least 4 labeled features");
  }
  size_t positives = 0;
  for (const LabeledFeature& f : features) positives += f.label;
  if (positives == 0 || positives == features.size()) {
    return Status::InvalidArgument(
        "FPE training needs both positive and negative features");
  }

  // Optional minority-class oversampling: the validness labels are skewed
  // toward 0 and the paper's objective is recall of positives (Eq. 6).
  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options_.rebalance_positive_fraction > 0.0) {
    const double target = options_.rebalance_positive_fraction;
    const bool positives_minority =
        static_cast<double>(positives) <
        target * static_cast<double>(features.size());
    const int minority_label = positives_minority ? 1 : 0;
    std::vector<size_t> minority_indices;
    for (size_t i = 0; i < features.size(); ++i) {
      if (features[i].label == minority_label) minority_indices.push_back(i);
    }
    const size_t majority = features.size() - minority_indices.size();
    // Duplicate minority examples until the classes are near balanced.
    Rng rng(options_.seed);
    while (!minority_indices.empty() &&
           order.size() < 2 * majority) {
      order.push_back(minority_indices[rng.UniformInt(
          static_cast<uint64_t>(minority_indices.size()))]);
    }
  }

  std::vector<LabeledFeature> training;
  training.reserve(order.size());
  for (size_t i : order) training.push_back(features[i]);

  EAFE_ASSIGN_OR_RETURN(data::DataFrame x, SignatureFrame(training));
  std::vector<double> y;
  y.reserve(training.size());
  for (const LabeledFeature& f : training) {
    y.push_back(static_cast<double>(f.label));
  }

  switch (options_.classifier) {
    case ClassifierKind::kLogistic: {
      ml::LogisticRegression::Options lr;
      lr.epochs = options_.classifier_epochs;
      lr.seed = options_.seed;
      logistic_ = ml::LogisticRegression(lr);
      EAFE_RETURN_NOT_OK(logistic_.Fit(x, y));
      break;
    }
    case ClassifierKind::kMlp: {
      ml::Mlp::Options mlp;
      mlp.task = data::TaskType::kClassification;
      mlp.hidden_sizes = {32};
      mlp.epochs = options_.classifier_epochs;
      mlp.seed = options_.seed;
      mlp_ = ml::Mlp(mlp);
      EAFE_RETURN_NOT_OK(mlp_.Fit(x, y));
      break;
    }
    case ClassifierKind::kRandomForest: {
      ml::RandomForest::Options rf;
      rf.task = data::TaskType::kClassification;
      rf.num_trees = 20;
      rf.max_depth = 8;
      rf.seed = options_.seed;
      forest_ = ml::RandomForest(rf);
      EAFE_RETURN_NOT_OK(forest_.Fit(x, y));
      break;
    }
  }
  trained_ = true;
  return Status::OK();
}

Status FpeModel::RestoreLogistic(ml::LogisticRegression classifier) {
  if (options_.classifier != ClassifierKind::kLogistic) {
    return Status::FailedPrecondition(
        "RestoreLogistic requires the logistic classifier kind");
  }
  if (!classifier.fitted()) {
    return Status::InvalidArgument("restored classifier is not fitted");
  }
  const size_t expected = InputDimension();
  if (classifier.num_features() != expected) {
    return Status::InvalidArgument(
        "classifier input width disagrees with compressor signature size");
  }
  logistic_ = std::move(classifier);
  trained_ = true;
  return Status::OK();
}

Status FpeModel::RestoreMlp(ml::Mlp classifier) {
  if (options_.classifier != ClassifierKind::kMlp) {
    return Status::FailedPrecondition(
        "RestoreMlp requires the MLP classifier kind");
  }
  if (!classifier.fitted()) {
    return Status::InvalidArgument("restored classifier is not fitted");
  }
  if (classifier.task() != data::TaskType::kClassification) {
    return Status::InvalidArgument(
        "the FPE classifier must be a classification MLP");
  }
  if (classifier.num_features() != InputDimension()) {
    return Status::InvalidArgument(
        "classifier input width disagrees with compressor signature size");
  }
  mlp_ = std::move(classifier);
  trained_ = true;
  return Status::OK();
}

Result<double> FpeModel::PredictProbability(
    const std::vector<double>& values) const {
  if (!trained_) return Status::FailedPrecondition("FPE model not trained");
  EAFE_ASSIGN_OR_RETURN(std::vector<double> input, BuildInput(values));
  data::DataFrame frame;
  for (size_t j = 0; j < input.size(); ++j) {
    EAFE_RETURN_NOT_OK(frame.AddColumn(data::Column(
        StrFormat("s%zu", j), std::vector<double>{input[j]})));
  }
  std::vector<double> proba;
  switch (options_.classifier) {
    case ClassifierKind::kLogistic: {
      EAFE_ASSIGN_OR_RETURN(proba, logistic_.PredictProba(frame));
      break;
    }
    case ClassifierKind::kMlp: {
      EAFE_ASSIGN_OR_RETURN(proba, mlp_.PredictProba(frame));
      break;
    }
    case ClassifierKind::kRandomForest: {
      EAFE_ASSIGN_OR_RETURN(proba, forest_.PredictProba(frame));
      break;
    }
  }
  return proba[0];
}

Result<int> FpeModel::PredictLabel(const std::vector<double>& values) const {
  EAFE_ASSIGN_OR_RETURN(double p, PredictProbability(values));
  return p >= 0.5 ? 1 : 0;
}

Result<stats::BinaryCounts> FpeModel::Evaluate(
    const std::vector<LabeledFeature>& features) const {
  if (!trained_) return Status::FailedPrecondition("FPE model not trained");
  std::vector<int> truth;
  std::vector<int> predicted;
  truth.reserve(features.size());
  predicted.reserve(features.size());
  for (const LabeledFeature& f : features) {
    EAFE_ASSIGN_OR_RETURN(int label, PredictLabel(f.values));
    truth.push_back(f.label);
    predicted.push_back(label);
  }
  return stats::CountBinary(truth, predicted);
}

}  // namespace eafe::fpe
