#include "fpe/trainer.h"

#include <algorithm>

#include "core/logging.h"
#include "core/rng.h"

namespace eafe::fpe {

Result<FpeCandidateMetrics> EvaluateCandidate(
    const std::vector<LabeledFeature>& train,
    const std::vector<LabeledFeature>& validation,
    hashing::MinHashScheme scheme, size_t dimension,
    FpeModel::ClassifierKind classifier, uint64_t seed,
    FpeModel* model_out) {
  FpeModel::Options options;
  options.compressor.scheme = scheme;
  options.compressor.dimension = dimension;
  options.compressor.seed = seed;
  options.classifier = classifier;
  options.seed = seed;
  FpeModel model(options);
  EAFE_RETURN_NOT_OK(model.Train(train));
  EAFE_ASSIGN_OR_RETURN(stats::BinaryCounts counts,
                        model.Evaluate(validation));
  FpeCandidateMetrics metrics;
  metrics.scheme = scheme;
  metrics.dimension = dimension;
  metrics.recall = counts.Recall();
  metrics.precision = counts.Precision();
  metrics.f1 = counts.F1();
  if (model_out != nullptr) *model_out = std::move(model);
  return metrics;
}

Result<FpeTrainingResult> TrainFpeModel(
    const std::vector<data::Dataset>& public_datasets,
    const FpeTrainingOptions& options) {
  if (public_datasets.empty()) {
    return Status::InvalidArgument("no public datasets provided");
  }
  if (options.validation_fraction <= 0.0 ||
      options.validation_fraction >= 1.0) {
    return Status::InvalidArgument("validation_fraction must be in (0, 1)");
  }

  // Step 1: leave-one-feature-out labeling (lines 3-16 of Algorithm 1).
  // Labels do not depend on the hash candidate, so they are computed once.
  ml::TaskEvaluator evaluator(options.evaluator);
  EAFE_ASSIGN_OR_RETURN(
      std::vector<LabeledFeature> labeled,
      LabelFeatureCollection(public_datasets, evaluator, options.threshold));
  labeled.insert(labeled.end(), options.extra_labeled.begin(),
                 options.extra_labeled.end());
  if (labeled.size() < 8) {
    return Status::InvalidArgument(
        "too few labeled features; provide more/larger public datasets");
  }

  // Step 2: split train/validation by feature.
  Rng rng(options.seed);
  std::vector<size_t> perm = rng.Permutation(labeled.size());
  const size_t validation_size = std::max<size_t>(
      2, static_cast<size_t>(options.validation_fraction *
                             static_cast<double>(labeled.size())));
  FpeTrainingResult result;
  for (size_t i = 0; i < perm.size(); ++i) {
    auto& bucket = i < validation_size ? result.validation_features
                                       : result.training_features;
    bucket.push_back(labeled[perm[i]]);
  }
  result.num_labeled_features = labeled.size();
  for (const LabeledFeature& f : labeled) {
    result.num_positive_features += static_cast<size_t>(f.label);
  }
  // Degenerate splits (a side without both classes) make training or
  // recall undefined; reshuffle deterministically until both sides mix.
  auto has_both = [](const std::vector<LabeledFeature>& set) {
    bool pos = false, neg = false;
    for (const LabeledFeature& f : set) {
      (f.label == 1 ? pos : neg) = true;
    }
    return pos && neg;
  };
  for (int attempt = 0; attempt < 16 &&
                        !(has_both(result.training_features) &&
                          has_both(result.validation_features));
       ++attempt) {
    result.training_features.clear();
    result.validation_features.clear();
    perm = rng.Permutation(labeled.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      auto& bucket = i < validation_size ? result.validation_features
                                         : result.training_features;
      bucket.push_back(labeled[perm[i]]);
    }
  }
  if (!has_both(result.training_features) ||
      !has_both(result.validation_features)) {
    return Status::FailedPrecondition(
        "could not split labeled features with both classes on each side; "
        "the label threshold may be too strict for these datasets");
  }

  // Training-set denoising: gains just below the threshold carry labels
  // dominated by CV fold noise; dropping that band sharpens the decision
  // boundary the classifier can learn. Validation is left untouched.
  if (options.negative_margin > 0.0) {
    std::vector<LabeledFeature> filtered;
    for (LabeledFeature& f : result.training_features) {
      if (f.label == 1 ||
          f.score_gain < options.threshold - options.negative_margin) {
        filtered.push_back(std::move(f));
      }
    }
    if (has_both(filtered)) {
      result.training_features = std::move(filtered);
    }
  }

  // Step 3: sweep (scheme, d) and keep the recall-maximizing candidate
  // subject to Eq. 6's constraints.
  std::vector<hashing::MinHashScheme> schemes = options.schemes;
  if (schemes.empty()) schemes = hashing::AllMinHashSchemes();
  bool have_selected = false;
  FpeModel best_model;
  for (hashing::MinHashScheme scheme : schemes) {
    for (size_t dimension : options.dimensions) {
      FpeModel candidate_model;
      EAFE_ASSIGN_OR_RETURN(
          FpeCandidateMetrics metrics,
          EvaluateCandidate(result.training_features,
                            result.validation_features, scheme, dimension,
                            options.classifier, options.seed,
                            &candidate_model));
      result.sweep.push_back(metrics);
      const bool feasible = metrics.precision > 0.0 && metrics.recall < 1.0;
      const bool better =
          !have_selected || metrics.recall > result.selected.recall ||
          (metrics.recall == result.selected.recall &&
           metrics.precision > result.selected.precision);
      // Prefer feasible candidates; among them maximize recall (Eq. 6).
      const bool selected_feasible =
          have_selected && result.selected.precision > 0.0 &&
          result.selected.recall < 1.0;
      if ((feasible && (!selected_feasible || better)) ||
          (!selected_feasible && better)) {
        result.selected = metrics;
        best_model = std::move(candidate_model);
        have_selected = true;
      }
    }
  }
  if (!have_selected) {
    return Status::Internal("hash-candidate sweep produced no model");
  }
  if (result.selected.precision == 0.0) {
    LogWarning(
        "FPE selection violates Eq. 6 constraint precision > 0; returning "
        "best-recall candidate anyway");
  }
  result.model = std::move(best_model);
  return result;
}

}  // namespace eafe::fpe
