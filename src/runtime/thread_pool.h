#ifndef EAFE_RUNTIME_THREAD_POOL_H_
#define EAFE_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/rng.h"

namespace eafe::runtime {

class MetricCounter;
class MetricGauge;

/// Fixed-size worker pool with a FIFO task queue — the shared execution
/// substrate for candidate evaluation, cross-validation folds, and
/// per-tree forest training.
///
/// Determinism contract: the pool itself never introduces randomness into
/// results. Work that feeds a reduction must be partitioned statically
/// (see ParallelFor) and reduced in index order, never in completion
/// order. Each worker owns a deterministically-seeded RNG stream
/// (options.rng_seed x worker index) for randomness that may not affect
/// results (e.g. jittered backoff); result-affecting randomness must be
/// pre-drawn serially by the caller.
class ThreadPool {
 public:
  struct Options {
    /// Worker count; 0 means std::thread::hardware_concurrency().
    size_t num_threads = 0;
    /// Base seed for the per-worker RNG streams.
    uint64_t rng_seed = 0x243F6A8885A308D3ULL;
  };

  ThreadPool() : ThreadPool(Options()) {}
  explicit ThreadPool(size_t num_threads)
      : ThreadPool(Options{num_threads, Options().rng_seed}) {}
  explicit ThreadPool(const Options& options);
  /// Drains the queue (queued tasks still run), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. The returned future completes when the task
  /// finishes and carries any exception the task threw; discarding the
  /// future is safe (fire-and-forget).
  std::future<void> Submit(std::function<void()> task);

  /// Index of the calling pool worker in [0, num_threads), or -1 when the
  /// caller is not a worker of any ThreadPool.
  static int CurrentWorkerIndex();

  /// True when called from any ThreadPool worker thread. ParallelFor uses
  /// this to run nested parallel regions inline instead of oversubscribing
  /// (folds submit, trees run inline).
  static bool OnWorkerThread();

  /// The calling worker's own RNG stream, deterministically seeded from
  /// (options.rng_seed, worker index); null off-pool. Streams are stable
  /// per worker, but which task observes which stream depends on
  /// scheduling — never use this for randomness that affects results.
  static Rng* CurrentWorkerRng();

 private:
  void WorkerMain(size_t index);

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  uint64_t rng_seed_;
  /// Occupancy instruments, captured from GlobalMetrics() at
  /// construction (no-ops unless a recording gateway is installed
  /// first); owned by the gateway.
  MetricCounter* tasks_total_;
  MetricGauge* busy_workers_;
};

/// Runs fn(begin, end) over a static contiguous partition of [0, n): block
/// b of B covers [b*n/B, (b+1)*n/B) with B = min(pool workers, n). The
/// partition depends only on (n, pool size), so writes indexed by the loop
/// variable and reductions folded in index order are deterministic at any
/// thread count.
///
/// Runs the whole range inline on the caller when `pool` is null, has one
/// worker, n <= 1, or the call is nested inside another parallel region —
/// on a pool worker or inside the caller-executed block 0 (nested
/// parallelism runs serially rather than oversubscribing the fixed pool).
/// The caller always executes block 0 itself. Blocks until every block
/// finishes; rethrows the exception of the lowest-indexed failing block.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn);

/// ParallelFor with a minimum block size: at most n / min_block blocks are
/// spawned (always at least one), so cheap per-item work — e.g. one
/// feature's histogram accumulation over a small node — is batched instead
/// of paying one queue round-trip per handful of items. min_block affects
/// scheduling only, never the set of (begin, end) pairs' union, so results
/// stay deterministic under the same static-partition contract.
void ParallelFor(ThreadPool* pool, size_t n, size_t min_block,
                 const std::function<void(size_t, size_t)>& fn);

/// Configures the process-wide pool size used by GlobalPool(); 0 means
/// hardware_concurrency. Takes effect on the next GlobalPool() call, which
/// rebuilds the pool if the size changed — call only between parallel
/// regions (binary startup, tests, benches), never concurrently with work.
void SetGlobalThreads(size_t num_threads);

/// The configured global thread count with 0 resolved to the hardware
/// default (never returns 0).
size_t GlobalThreads();

/// Lazily-created process-wide pool shared by every parallel region, or
/// null when the configured size is 1: the serial path spawns no threads
/// at all and is bit-identical to a pool-free build.
ThreadPool* GlobalPool();

}  // namespace eafe::runtime

#endif  // EAFE_RUNTIME_THREAD_POOL_H_
