#include "runtime/score_cache.h"

#include <algorithm>

#include "runtime/metrics.h"

namespace eafe::runtime {
namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// splitmix64 finalizer: decorrelates the shard choice from any structure
// in the signature bits.
uint64_t MixKey(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

ScoreCache::ScoreCache(const Options& options)
    : metric_hits_(GlobalMetrics()->Counter("eafe_cache_hits_total",
                                            "Score cache lookup hits")),
      metric_misses_(GlobalMetrics()->Counter("eafe_cache_misses_total",
                                              "Score cache lookup misses")),
      metric_insertions_(GlobalMetrics()->Counter(
          "eafe_cache_insertions_total", "Score cache insertions")),
      metric_evictions_(GlobalMetrics()->Counter(
          "eafe_cache_evictions_total", "Score cache LRU evictions")) {
  const size_t shard_count =
      NextPowerOfTwo(std::max<size_t>(options.shards, 1));
  shards_.reserve(shard_count);
  for (size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_capacity_ =
      std::max<size_t>(1, std::max<size_t>(options.capacity, 1) / shard_count);
}

ScoreCache::Shard& ScoreCache::ShardFor(uint64_t key) {
  return *shards_[MixKey(key) & (shards_.size() - 1)];
}

std::optional<double> ScoreCache::Lookup(uint64_t key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    metric_misses_->Increment();
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  metric_hits_->Increment();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void ScoreCache::Insert(uint64_t key, double score) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = score;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, score);
  shard.index.emplace(key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  metric_insertions_->Increment();
  if (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    metric_evictions_->Increment();
  }
}

void ScoreCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

size_t ScoreCache::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

ScoreCache::Stats ScoreCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace eafe::runtime
