#ifndef EAFE_RUNTIME_SCORE_CACHE_H_
#define EAFE_RUNTIME_SCORE_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace eafe::runtime {

class MetricCounter;

/// Thread-safe sharded LRU map from a 64-bit signature to a score. The
/// evaluation service keys it by the canonical transformation-signature
/// hash of (evaluator config, feature-set state, candidate), so a
/// candidate regenerated against an unchanged state never pays a second
/// cross-validation.
///
/// Sharding bounds contention: a key is pinned to one shard by a mixed
/// hash, each shard has its own mutex and LRU list, and the per-shard
/// capacity is capacity / shards. Recency is therefore per shard, which is
/// the standard approximation of global LRU.
class ScoreCache {
 public:
  struct Options {
    size_t capacity = 1024;  ///< Total entries across all shards.
    size_t shards = 8;       ///< Rounded up to a power of two.
  };

  ScoreCache() : ScoreCache(Options()) {}
  explicit ScoreCache(const Options& options);

  ScoreCache(const ScoreCache&) = delete;
  ScoreCache& operator=(const ScoreCache&) = delete;

  /// The cached score for `key`, refreshing its recency; nullopt on miss.
  std::optional<double> Lookup(uint64_t key);

  /// Inserts or refreshes `key`, evicting the shard's least-recent entry
  /// when the shard is full.
  void Insert(uint64_t key, double score);

  void Clear();

  size_t size() const;
  size_t num_shards() const { return shards_.size(); }

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t insertions = 0;
    size_t evictions = 0;
    double HitRate() const {
      const size_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  Stats stats() const;

 private:
  struct Shard {
    std::mutex mutex;
    /// Front = most recently used.
    std::list<std::pair<uint64_t, double>> lru;
    std::unordered_map<uint64_t,
                       std::list<std::pair<uint64_t, double>>::iterator>
        index;
  };

  Shard& ShardFor(uint64_t key);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_capacity_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
  std::atomic<size_t> insertions_{0};
  std::atomic<size_t> evictions_{0};
  /// Mirrors of the counters above in the process-wide metric gateway,
  /// captured from GlobalMetrics() at construction; owned by the gateway.
  MetricCounter* metric_hits_;
  MetricCounter* metric_misses_;
  MetricCounter* metric_insertions_;
  MetricCounter* metric_evictions_;
};

}  // namespace eafe::runtime

#endif  // EAFE_RUNTIME_SCORE_CACHE_H_
