#ifndef EAFE_RUNTIME_BOUNDED_QUEUE_H_
#define EAFE_RUNTIME_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/stopwatch.h"
#include "runtime/metrics.h"

namespace eafe::runtime {

/// Bounded MPMC queue — the backpressure primitive under
/// runtime::Pipeline (DESIGN.md §12). Producers block while the queue is
/// at capacity, consumers block while it is empty; Close() wakes
/// everyone and lets consumers drain what is already buffered. The
/// queue is FIFO per producer and globally FIFO under a single
/// producer, which is what the pipeline's sequence-number merge relies
/// on for bounded reorder windows.
///
/// Instrumentation (all owned by the gateway, captured at
/// construction, no-ops under VoidMetrics()):
///   <metric_prefix>_queue_depth              gauge — current size
///   <metric_prefix>_queue_push_stall_seconds histogram — time producers
///                                            spent blocked on a full
///                                            queue (only stalls are
///                                            observed, not every push)
///   <metric_prefix>_queue_pop_stall_seconds  histogram — time consumers
///                                            spent blocked on an empty
///                                            queue
/// An empty metric_prefix skips instrument registration entirely.
template <typename T>
class BoundedQueue {
 public:
  struct Options {
    /// Maximum number of buffered items; producers block at capacity.
    size_t capacity = 8;
    /// Prometheus identifier prefix (e.g. "eafe_pipeline_filter"); ""
    /// disables instrumentation.
    std::string metric_prefix;
    MetricGateway* metrics = nullptr;  ///< null -> GlobalMetrics().
  };

  /// A zero capacity is clamped to 1 (a bounded queue must be able to
  /// hold at least one item or producers and consumers deadlock).
  explicit BoundedQueue(const Options& options)
      : capacity_(options.capacity == 0 ? 1 : options.capacity) {
    if (!options.metric_prefix.empty()) {
      MetricGateway* gateway =
          options.metrics != nullptr ? options.metrics : GlobalMetrics();
      depth_ = gateway->Gauge(options.metric_prefix + "_queue_depth",
                              "Items currently buffered in the queue");
      push_stall_ = gateway->Histogram(
          options.metric_prefix + "_queue_push_stall_seconds",
          "Seconds producers spent blocked on a full queue", {});
      pop_stall_ = gateway->Histogram(
          options.metric_prefix + "_queue_pop_stall_seconds",
          "Seconds consumers spent blocked on an empty queue", {});
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `value`)
  /// if the queue is closed before space frees up; pushing to a closed
  /// queue is a benign no-op so racing producers need no extra
  /// handshake.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      Stopwatch stall;
      not_full_.wait(lock,
                     [this] { return items_.size() < capacity_ || closed_; });
      if (push_stall_ != nullptr) push_stall_->Observe(stall.ElapsedSeconds());
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    if (depth_ != nullptr) depth_->Set(static_cast<double>(items_.size()));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
      if (depth_ != nullptr) depth_->Set(static_cast<double>(items_.size()));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt only when the
  /// queue is closed AND drained — buffered items are always delivered.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() && !closed_) {
      Stopwatch stall;
      not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
      if (pop_stall_ != nullptr) pop_stall_->Observe(stall.ElapsedSeconds());
    }
    if (items_.empty()) return std::nullopt;  // Closed and drained.
    T value = std::move(items_.front());
    items_.pop_front();
    if (depth_ != nullptr) depth_->Set(static_cast<double>(items_.size()));
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Idempotent. Unblocks every waiter; subsequent pushes fail,
  /// subsequent pops drain the backlog then return nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  MetricGauge* depth_ = nullptr;
  MetricHistogram* push_stall_ = nullptr;
  MetricHistogram* pop_stall_ = nullptr;
};

}  // namespace eafe::runtime

#endif  // EAFE_RUNTIME_BOUNDED_QUEUE_H_
