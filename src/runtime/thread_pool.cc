#include "runtime/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

#include "runtime/metrics.h"

namespace eafe::runtime {
namespace {

// Worker identity for the calling thread; -1 / null off-pool.
thread_local int tls_worker_index = -1;
thread_local Rng* tls_worker_rng = nullptr;
// Open ParallelFor regions on the calling thread. Block 0 of a region
// runs on the caller, which may not be a pool worker; the depth makes
// regions nested under it run inline too instead of re-fanning out.
thread_local size_t tls_region_depth = 0;

size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  return std::max<size_t>(std::thread::hardware_concurrency(), 1);
}

}  // namespace

ThreadPool::ThreadPool(const Options& options)
    : rng_seed_(options.rng_seed),
      tasks_total_(GlobalMetrics()->Counter(
          "eafe_pool_tasks_total", "Tasks executed by pool workers")),
      busy_workers_(GlobalMetrics()->Gauge(
          "eafe_pool_busy_workers", "Pool workers currently running a task")) {
  const size_t count = ResolveThreads(options.num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerMain(size_t index) {
  // Stream i is splitmix-expanded from (seed, i) by the Rng constructor,
  // so recreating a pool with the same seed reproduces every stream.
  Rng rng(rng_seed_ + 0x9E3779B97F4A7C15ULL * (index + 1));
  tls_worker_index = static_cast<int>(index);
  tls_worker_rng = &rng;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) break;  // shutdown_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    busy_workers_->Add(1.0);
    task();  // Exceptions land in the task's future.
    busy_workers_->Add(-1.0);
    tasks_total_->Increment();
  }
  tls_worker_index = -1;
  tls_worker_rng = nullptr;
}

int ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

bool ThreadPool::OnWorkerThread() { return tls_worker_index >= 0; }

Rng* ThreadPool::CurrentWorkerRng() { return tls_worker_rng; }

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn) {
  ParallelFor(pool, n, 1, fn);
}

void ParallelFor(ThreadPool* pool, size_t n, size_t min_block,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (min_block == 0) min_block = 1;
  const size_t max_blocks = std::max<size_t>(n / min_block, 1);
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1 ||
      max_blocks <= 1 || ThreadPool::OnWorkerThread() ||
      tls_region_depth > 0) {
    fn(0, n);
    return;
  }
  const size_t blocks = std::min({pool->num_threads(), n, max_blocks});
  std::vector<std::future<void>> futures;
  futures.reserve(blocks - 1);
  for (size_t b = 1; b < blocks; ++b) {
    const size_t begin = b * n / blocks;
    const size_t end = (b + 1) * n / blocks;
    futures.push_back(pool->Submit([&fn, begin, end] { fn(begin, end); }));
  }
  // The caller owns block 0. Its exception must not unwind past the
  // remote blocks, which still reference fn.
  std::exception_ptr first;
  ++tls_region_depth;
  try {
    fn(0, n / blocks);
  } catch (...) {
    first = std::current_exception();
  }
  --tls_region_depth;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

namespace {

struct GlobalPoolState {
  std::mutex mutex;
  size_t configured = 0;  // 0 = hardware default.
  size_t built_size = 0;
  std::unique_ptr<ThreadPool> pool;
};

GlobalPoolState& GlobalState() {
  static GlobalPoolState* state = new GlobalPoolState();
  return *state;
}

}  // namespace

void SetGlobalThreads(size_t num_threads) {
  GlobalPoolState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.configured = num_threads;
}

size_t GlobalThreads() {
  GlobalPoolState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mutex);
  return ResolveThreads(state.configured);
}

ThreadPool* GlobalPool() {
  GlobalPoolState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mutex);
  const size_t resolved = ResolveThreads(state.configured);
  if (resolved <= 1) {
    state.pool.reset();
    state.built_size = 0;
    return nullptr;
  }
  if (state.pool == nullptr || state.built_size != resolved) {
    state.pool.reset();  // Join the old workers before rebuilding.
    state.pool = std::make_unique<ThreadPool>(resolved);
    state.built_size = resolved;
  }
  return state.pool.get();
}

}  // namespace eafe::runtime
