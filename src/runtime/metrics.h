#ifndef EAFE_RUNTIME_METRICS_H_
#define EAFE_RUNTIME_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace eafe::runtime {

/// Prometheus-style runtime metrics (modeled on coincenter's monitoring
/// module): instrumented code asks a MetricGateway for named instruments
/// once (at construction) and drives them from hot paths; the gateway
/// decides whether anything is recorded. The default is VoidMetrics() —
/// every instrument is a shared no-op, so instrumentation costs one
/// predictable indirect call when monitoring is off. TextMetricGateway
/// records for real and renders the Prometheus text exposition format;
/// eafe_server will export it, and the CLI's --metrics flag dumps it.
///
/// Instruments are owned by their gateway and stay valid for its
/// lifetime. All operations are thread-safe; hot-path updates are
/// relaxed atomics (metrics are monitoring data, not synchronization).

/// Monotonically increasing event count.
class MetricCounter {
 public:
  virtual ~MetricCounter() = default;
  virtual void Increment(uint64_t delta = 1) = 0;
  virtual uint64_t Value() const = 0;
};

/// Point-in-time level (queue depth, busy workers).
class MetricGauge {
 public:
  virtual ~MetricGauge() = default;
  virtual void Set(double value) = 0;
  virtual void Add(double delta) = 0;
  virtual double Value() const = 0;
};

/// Distribution of observations over fixed buckets (latencies).
class MetricHistogram {
 public:
  virtual ~MetricHistogram() = default;
  virtual void Observe(double value) = 0;
  virtual uint64_t Count() const = 0;
  virtual double Sum() const = 0;
};

class MetricGateway {
 public:
  virtual ~MetricGateway() = default;

  /// Instrument lookup-or-create by name. Repeated calls with the same
  /// name return the same instrument (help/buckets from the first call
  /// win). Names must be valid Prometheus identifiers:
  /// [a-zA-Z_][a-zA-Z0-9_]*.
  virtual MetricCounter* Counter(const std::string& name,
                                 const std::string& help) = 0;
  virtual MetricGauge* Gauge(const std::string& name,
                             const std::string& help) = 0;
  /// `buckets` are upper bounds, ascending; empty selects a default
  /// latency-flavored set. A +Inf bucket is implicit.
  virtual MetricHistogram* Histogram(const std::string& name,
                                     const std::string& help,
                                     std::vector<double> buckets) = 0;

  /// Prometheus text exposition of everything registered ("" for the
  /// void gateway).
  virtual std::string TextExposition() const = 0;
};

/// The shared no-op gateway: instruments discard updates and read back
/// zero. Never null, never destroyed.
MetricGateway* VoidMetrics();

/// In-memory recording gateway with Prometheus text exposition.
/// Registration takes a mutex; instrument updates are lock-free.
class TextMetricGateway : public MetricGateway {
 public:
  TextMetricGateway();
  ~TextMetricGateway() override;
  TextMetricGateway(const TextMetricGateway&) = delete;
  TextMetricGateway& operator=(const TextMetricGateway&) = delete;

  MetricCounter* Counter(const std::string& name,
                         const std::string& help) override;
  MetricGauge* Gauge(const std::string& name,
                     const std::string& help) override;
  MetricHistogram* Histogram(const std::string& name,
                             const std::string& help,
                             std::vector<double> buckets) override;

  /// # HELP / # TYPE blocks plus samples, families sorted by name so
  /// the dump is deterministic.
  std::string TextExposition() const override;

 private:
  struct Family;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Family>> families_;
};

/// Process-wide gateway used by ThreadPool / ScoreCache / EvalService /
/// the SIMD dispatch counters; VoidMetrics() until installed. Install
/// (SetGlobalMetrics) before constructing the instrumented components —
/// they capture their instruments at construction. Passing nullptr
/// restores the void gateway. The caller keeps ownership and must keep
/// the gateway alive while any instrumented component lives.
MetricGateway* GlobalMetrics();
void SetGlobalMetrics(MetricGateway* gateway);

}  // namespace eafe::runtime

#endif  // EAFE_RUNTIME_METRICS_H_
