#include "runtime/metrics.h"

#include <atomic>
#include <sstream>
#include <utility>

#include "core/check.h"
#include "core/string_util.h"

namespace eafe::runtime {
namespace {

// ---------------------------------------------------------------------
// Void instruments: one shared no-op of each kind.

class VoidCounter final : public MetricCounter {
 public:
  void Increment(uint64_t) override {}
  uint64_t Value() const override { return 0; }
};

class VoidGauge final : public MetricGauge {
 public:
  void Set(double) override {}
  void Add(double) override {}
  double Value() const override { return 0.0; }
};

class VoidHistogram final : public MetricHistogram {
 public:
  void Observe(double) override {}
  uint64_t Count() const override { return 0; }
  double Sum() const override { return 0.0; }
};

class VoidGateway final : public MetricGateway {
 public:
  // The shared no-op instruments are intentionally immortal (leaked,
  // like VoidMetrics() itself): pool workers touch them *after* their
  // task's future becomes ready, so a worker epilogue can race process
  // exit — a destroyed instrument there is a virtual call on a
  // half-destructed object ("pure virtual method called" aborts).
  MetricCounter* Counter(const std::string&, const std::string&) override {
    static VoidCounter* counter = new VoidCounter();
    return counter;
  }
  MetricGauge* Gauge(const std::string&, const std::string&) override {
    static VoidGauge* gauge = new VoidGauge();
    return gauge;
  }
  MetricHistogram* Histogram(const std::string&, const std::string&,
                             std::vector<double>) override {
    static VoidHistogram* histogram = new VoidHistogram();
    return histogram;
  }
  std::string TextExposition() const override { return ""; }
};

// ---------------------------------------------------------------------
// Recording instruments: relaxed atomics — metrics are monitoring data,
// not synchronization, and hot paths must not serialize on them.

class AtomicCounter final : public MetricCounter {
 public:
  void Increment(uint64_t delta) override {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const override {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_{0};
};

class AtomicGauge final : public MetricGauge {
 public:
  void Set(double value) override {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(double delta) override {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const override {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

class AtomicHistogram final : public MetricHistogram {
 public:
  explicit AtomicHistogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)),
        buckets_(std::make_unique<std::atomic<uint64_t>[]>(bounds_.size())) {
    for (size_t i = 0; i < bounds_.size(); ++i) buckets_[i].store(0);
  }

  void Observe(double value) override {
    for (size_t i = 0; i < bounds_.size(); ++i) {
      if (value <= bounds_[i]) {
        buckets_[i].fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    count_.fetch_add(1, std::memory_order_relaxed);
    double current = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(current, current + value,
                                       std::memory_order_relaxed)) {
    }
  }
  uint64_t Count() const override {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const override {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Cumulative count of observations <= bounds_[i].
  uint64_t CumulativeBucket(size_t i) const {
    uint64_t total = 0;
    for (size_t k = 0; k <= i; ++k) {
      total += buckets_[k].load(std::memory_order_relaxed);
    }
    return total;
  }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  const std::vector<double> bounds_;  ///< Ascending upper bounds.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

std::vector<double> DefaultBuckets() {
  return {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0};
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

/// %g-style shortest form; Prometheus accepts plain decimal/scientific.
std::string FormatSample(double value) { return StrFormat("%g", value); }

}  // namespace

MetricGateway* VoidMetrics() {
  static VoidGateway* gateway = new VoidGateway();
  return gateway;
}

// ---------------------------------------------------------------------
// TextMetricGateway

struct TextMetricGateway::Family {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind;
  std::string help;
  std::unique_ptr<AtomicCounter> counter;
  std::unique_ptr<AtomicGauge> gauge;
  std::unique_ptr<AtomicHistogram> histogram;
};

TextMetricGateway::TextMetricGateway() = default;
TextMetricGateway::~TextMetricGateway() = default;

MetricCounter* TextMetricGateway::Counter(const std::string& name,
                                          const std::string& help) {
  EAFE_CHECK_MSG(ValidMetricName(name), ("invalid metric name: " + name).c_str());
  std::lock_guard<std::mutex> lock(mu_);
  auto& family = families_[name];
  if (family == nullptr) {
    family = std::make_unique<Family>();
    family->kind = Family::Kind::kCounter;
    family->help = help;
    family->counter = std::make_unique<AtomicCounter>();
  }
  EAFE_CHECK_MSG(family->kind == Family::Kind::kCounter,
                 ("metric re-registered with another type: " + name).c_str());
  return family->counter.get();
}

MetricGauge* TextMetricGateway::Gauge(const std::string& name,
                                      const std::string& help) {
  EAFE_CHECK_MSG(ValidMetricName(name), ("invalid metric name: " + name).c_str());
  std::lock_guard<std::mutex> lock(mu_);
  auto& family = families_[name];
  if (family == nullptr) {
    family = std::make_unique<Family>();
    family->kind = Family::Kind::kGauge;
    family->help = help;
    family->gauge = std::make_unique<AtomicGauge>();
  }
  EAFE_CHECK_MSG(family->kind == Family::Kind::kGauge,
                 ("metric re-registered with another type: " + name).c_str());
  return family->gauge.get();
}

MetricHistogram* TextMetricGateway::Histogram(const std::string& name,
                                              const std::string& help,
                                              std::vector<double> buckets) {
  EAFE_CHECK_MSG(ValidMetricName(name), ("invalid metric name: " + name).c_str());
  if (buckets.empty()) buckets = DefaultBuckets();
  for (size_t i = 1; i < buckets.size(); ++i) {
    EAFE_CHECK_MSG(buckets[i - 1] < buckets[i],
                   ("histogram buckets must ascend: " + name).c_str());
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto& family = families_[name];
  if (family == nullptr) {
    family = std::make_unique<Family>();
    family->kind = Family::Kind::kHistogram;
    family->help = help;
    family->histogram =
        std::make_unique<AtomicHistogram>(std::move(buckets));
  }
  EAFE_CHECK_MSG(family->kind == Family::Kind::kHistogram,
                 ("metric re-registered with another type: " + name).c_str());
  return family->histogram.get();
}

std::string TextMetricGateway::TextExposition() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    out << "# HELP " << name << " " << family->help << "\n";
    switch (family->kind) {
      case Family::Kind::kCounter:
        out << "# TYPE " << name << " counter\n";
        out << name << " " << family->counter->Value() << "\n";
        break;
      case Family::Kind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << " " << FormatSample(family->gauge->Value()) << "\n";
        break;
      case Family::Kind::kHistogram: {
        const AtomicHistogram& hist = *family->histogram;
        out << "# TYPE " << name << " histogram\n";
        const std::vector<double>& bounds = hist.bounds();
        for (size_t i = 0; i < bounds.size(); ++i) {
          out << name << "_bucket{le=\"" << FormatSample(bounds[i])
              << "\"} " << hist.CumulativeBucket(i) << "\n";
        }
        out << name << "_bucket{le=\"+Inf\"} " << hist.Count() << "\n";
        out << name << "_sum " << FormatSample(hist.Sum()) << "\n";
        out << name << "_count " << hist.Count() << "\n";
        break;
      }
    }
  }
  return out.str();
}

// ---------------------------------------------------------------------
// Global gateway

namespace {
std::atomic<MetricGateway*>& GlobalMetricsSlot() {
  static std::atomic<MetricGateway*> slot{nullptr};
  return slot;
}
}  // namespace

MetricGateway* GlobalMetrics() {
  MetricGateway* gateway =
      GlobalMetricsSlot().load(std::memory_order_acquire);
  return gateway != nullptr ? gateway : VoidMetrics();
}

void SetGlobalMetrics(MetricGateway* gateway) {
  GlobalMetricsSlot().store(gateway, std::memory_order_release);
}

}  // namespace eafe::runtime
