#ifndef EAFE_RUNTIME_METRIC_NAMES_H_
#define EAFE_RUNTIME_METRIC_NAMES_H_

namespace eafe::runtime::metric_names {

/// The metric-name registry: every `eafe_*` name a MetricGateway can be
/// asked for is declared here exactly once, and documented in README.md's
/// metrics section. eafe_lint's `metric-registry` rule enforces both
/// directions mechanically — a literal in src/ that is missing here, a
/// duplicate entry, an entry README does not document, or an entry no
/// code uses all fail the lint gate. Names ending in '_' (and the
/// pipeline prefix) are families: stage/kernel suffixes are appended at
/// runtime, so the registered name is the compile-time prefix.
///
/// Call sites keep their literals (grep for the name finds both the
/// publisher and this registry line); this header is the enumeration
/// operators read, not an indirection layer.

// -- runtime/thread_pool.cc: worker-pool load.
inline constexpr char kPoolTasksTotal[] = "eafe_pool_tasks_total";
inline constexpr char kPoolBusyWorkers[] = "eafe_pool_busy_workers";

// -- runtime/score_cache.cc: evaluation score cache.
inline constexpr char kCacheHitsTotal[] = "eafe_cache_hits_total";
inline constexpr char kCacheMissesTotal[] = "eafe_cache_misses_total";
inline constexpr char kCacheInsertionsTotal[] = "eafe_cache_insertions_total";
inline constexpr char kCacheEvictionsTotal[] = "eafe_cache_evictions_total";

// -- runtime/pipeline.h + afe/search_pipeline.cc: per-stage family
//    prefix; stages append _<stage>_queue_depth, _<stage>_items_total, ...
inline constexpr char kPipelinePrefix[] = "eafe_pipeline";

// -- simd/simd.cc: per-kernel dispatch family prefix; completed as
//    eafe_simd_dispatch_<kernel>_<level>.
inline constexpr char kSimdDispatchPrefix[] = "eafe_simd_dispatch_";

// -- afe/eval_service.cc: candidate-evaluation service.
inline constexpr char kEvalRequestsTotal[] = "eafe_eval_requests_total";
inline constexpr char kEvalCacheHitsTotal[] = "eafe_eval_cache_hits_total";
inline constexpr char kEvalEvaluationsTotal[] = "eafe_eval_evaluations_total";
inline constexpr char kEvalBatchSeconds[] = "eafe_eval_batch_seconds";

// -- serve/server/server.cc: TCP model server.
inline constexpr char kServerConnectionsAcceptedTotal[] =
    "eafe_server_connections_accepted_total";
inline constexpr char kServerConnectionsActive[] =
    "eafe_server_connections_active";
inline constexpr char kServerRequestsTotal[] = "eafe_server_requests_total";
inline constexpr char kServerShedTotal[] = "eafe_server_shed_total";
inline constexpr char kServerProtocolErrorsTotal[] =
    "eafe_server_protocol_errors_total";
inline constexpr char kServerBatchesTotal[] = "eafe_server_batches_total";
inline constexpr char kServerQueueDepth[] = "eafe_server_queue_depth";
inline constexpr char kServerBatchRows[] = "eafe_server_batch_rows";
inline constexpr char kServerRequestSeconds[] = "eafe_server_request_seconds";
inline constexpr char kServerBytesReadTotal[] = "eafe_server_bytes_read_total";
inline constexpr char kServerBytesWrittenTotal[] =
    "eafe_server_bytes_written_total";

}  // namespace eafe::runtime::metric_names

#endif  // EAFE_RUNTIME_METRIC_NAMES_H_
