#ifndef EAFE_RUNTIME_PIPELINE_H_
#define EAFE_RUNTIME_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/bounded_queue.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"

namespace eafe::runtime {

/// Multi-stage producer-consumer pipeline over BoundedQueue, built on
/// ThreadPool workers (never raw threads — the lint wall polices that).
/// The producer Submit()s items, each stage transforms them in place,
/// and NextOrdered() hands completed items back in submission order via
/// a sequence-number reorder buffer — so a pipeline whose stage
/// functions are pure produces results bit-identical to running the
/// stages inline, at any worker count. See DESIGN.md §12.
///
/// Execution model: at construction every stage worker is submitted to
/// the pool as a long-running task that loops popping its input queue.
/// Workers occupy their pool threads until the pipeline closes, so the
/// sum of stage workers must not exceed the pool size and the producer
/// must not schedule other pool work while the pipeline is open (work
/// nested *inside* stage functions is fine: ParallelFor detects pool
/// workers and runs inline). When no pool is available — null
/// GlobalPool-style serial configs, a pool smaller than the stage plan,
/// or construction from inside a pool worker — the pipeline degrades to
/// inline execution: Submit() runs every stage on the calling thread
/// and NextOrdered() just replays submission order. async() reports
/// which mode was chosen.
///
/// Lifecycle: Submit()* -> Close() -> NextOrdered() until nullopt.
/// Submit blocks when stage 0's queue is full (backpressure). Close()
/// closes stage 0's input; the last worker of each stage closes the
/// next stage's queue, so the close cascades and NextOrdered() returns
/// nullopt exactly after every submitted item has been delivered.
/// NextOrdered() may also be interleaved with Submit(); it blocks until
/// the next sequence number completes. Stage functions must not throw —
/// propagate failures in the item itself (e.g. a Status member).
///
/// Instrumentation per stage (through the BoundedQueue gauges plus):
///   <prefix>_<stage>_busy_workers gauge — workers inside fn right now
///   <prefix>_<stage>_items_total  counter — items processed
template <typename Item>
class Pipeline {
 public:
  struct StageSpec {
    /// Prometheus-identifier fragment naming the stage ("filter",
    /// "eval").
    std::string name;
    /// Worker count for this stage (>= 1) in async mode.
    size_t workers = 1;
    /// Input queue bound for this stage.
    size_t queue_capacity = 8;
    /// In-place transform; runs concurrently across items of one stage.
    std::function<void(Item&)> fn;
  };

  struct Options {
    /// Pool to run stage workers on; null forces inline mode.
    ThreadPool* pool = nullptr;
    /// Metric name prefix; "" disables instrumentation.
    std::string metric_prefix = "eafe_pipeline";
    MetricGateway* metrics = nullptr;  ///< null -> GlobalMetrics().
  };

  Pipeline(std::vector<StageSpec> stages, const Options& options)
      : stages_(std::move(stages)) {
    size_t required = 0;
    for (const StageSpec& stage : stages_) required += stage.workers;
    async_ = options.pool != nullptr && !stages_.empty() &&
             options.pool->num_threads() >= required &&
             !ThreadPool::OnWorkerThread();
    MetricGateway* gateway =
        options.metrics != nullptr ? options.metrics : GlobalMetrics();
    for (const StageSpec& stage : stages_) {
      const bool instrument = !options.metric_prefix.empty();
      const std::string base = options.metric_prefix + "_" + stage.name;
      StageState state;
      state.busy = instrument
                       ? gateway->Gauge(base + "_busy_workers",
                                        "Stage workers currently processing "
                                        "an item")
                       : nullptr;
      state.items = instrument
                        ? gateway->Counter(base + "_items_total",
                                           "Items processed by the stage")
                        : nullptr;
      if (async_) {
        typename BoundedQueue<Slot>::Options queue_options;
        queue_options.capacity = stage.queue_capacity;
        queue_options.metric_prefix = instrument ? base : "";
        queue_options.metrics = options.metrics;
        state.queue = std::make_unique<BoundedQueue<Slot>>(queue_options);
        state.live_workers.store(stage.workers, std::memory_order_relaxed);
      }
      states_.push_back(std::move(state));
    }
    if (async_) {
      for (size_t s = 0; s < stages_.size(); ++s) {
        for (size_t w = 0; w < stages_[s].workers; ++w) {
          workers_.push_back(
              options.pool->Submit([this, s] { StageWorker(s); }));
        }
      }
    }
  }

  ~Pipeline() {
    Close();
    for (std::future<void>& worker : workers_) worker.wait();
  }

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// True when stage workers run on the pool; false in inline mode.
  bool async() const { return async_; }

  /// Hands the item to stage 0, blocking while its queue is full
  /// (backpressure). In inline mode runs every stage on the calling
  /// thread instead. Must not be called after Close().
  void Submit(Item item) {
    const uint64_t seq = submitted_++;
    if (!async_) {
      for (size_t s = 0; s < stages_.size(); ++s) {
        RunStage(s, item);
      }
      Emit(seq, std::move(item));
      return;
    }
    // Push only fails on a closed queue, which would mean Submit after
    // Close — the item would be silently lost, so surface it by
    // accounting: a dropped push keeps `submitted_` ahead of emitted
    // items and NextOrdered() blocks, making the misuse loud in tests.
    states_[0].queue->Push(Slot{seq, std::move(item)});
  }

  /// Closes the intake. Idempotent. In async mode the close cascades
  /// stage by stage as workers drain their queues.
  void Close() {
    if (closed_.exchange(true)) return;
    if (async_) {
      states_[0].queue->Close();
    } else {
      std::lock_guard<std::mutex> lock(out_mu_);
      done_ = true;
      out_cv_.notify_all();
    }
  }

  /// Returns completed items in submission order, blocking until the
  /// next sequence number finishes. Returns nullopt once the pipeline
  /// is closed and every submitted item has been delivered.
  std::optional<Item> NextOrdered() {
    std::unique_lock<std::mutex> lock(out_mu_);
    out_cv_.wait(lock, [this] {
      return output_.count(next_out_) != 0 ||
             (done_ && next_out_ >= submitted_);
    });
    auto it = output_.find(next_out_);
    if (it == output_.end()) return std::nullopt;  // Closed and drained.
    Item item = std::move(it->second);
    output_.erase(it);
    ++next_out_;
    return item;
  }

 private:
  struct Slot {
    uint64_t seq = 0;
    Item item;
  };

  struct StageState {
    std::unique_ptr<BoundedQueue<Slot>> queue;  // Async mode only.
    std::atomic<size_t> live_workers{0};
    MetricGauge* busy = nullptr;
    MetricCounter* items = nullptr;

    StageState() = default;
    StageState(StageState&& other) noexcept
        : queue(std::move(other.queue)),
          live_workers(other.live_workers.load(std::memory_order_relaxed)),
          busy(other.busy),
          items(other.items) {}
  };

  void RunStage(size_t s, Item& item) {
    StageState& state = states_[s];
    if (state.busy != nullptr) state.busy->Add(1);
    stages_[s].fn(item);
    if (state.busy != nullptr) state.busy->Add(-1);
    if (state.items != nullptr) state.items->Increment();
  }

  void StageWorker(size_t s) {
    while (true) {
      std::optional<Slot> slot = states_[s].queue->Pop();
      if (!slot.has_value()) break;  // Closed and drained.
      RunStage(s, slot->item);
      if (s + 1 < states_.size()) {
        states_[s + 1].queue->Push(std::move(*slot));
      } else {
        Emit(slot->seq, std::move(slot->item));
      }
    }
    if (states_[s].live_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last worker out closes the downstream queue; after the final
      // stage drains, mark the output complete.
      if (s + 1 < states_.size()) {
        states_[s + 1].queue->Close();
      } else {
        std::lock_guard<std::mutex> lock(out_mu_);
        done_ = true;
        out_cv_.notify_all();
      }
    }
  }

  void Emit(uint64_t seq, Item item) {
    std::lock_guard<std::mutex> lock(out_mu_);
    output_.emplace(seq, std::move(item));
    out_cv_.notify_all();
  }

  std::vector<StageSpec> stages_;
  std::vector<StageState> states_;
  std::vector<std::future<void>> workers_;
  bool async_ = false;
  std::atomic<bool> closed_{false};
  std::atomic<uint64_t> submitted_{0};

  /// Reorder buffer: completed items keyed by sequence number. Bounded
  /// in practice by the stage queue bounds plus items in flight — the
  /// producer cannot run ahead of the slowest stage by more than the
  /// total queue capacity.
  std::mutex out_mu_;
  std::condition_variable out_cv_;
  std::map<uint64_t, Item> output_;
  uint64_t next_out_ = 0;
  bool done_ = false;
};

}  // namespace eafe::runtime

#endif  // EAFE_RUNTIME_PIPELINE_H_
