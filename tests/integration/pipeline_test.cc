#include <gtest/gtest.h>

#include "afe/eafe.h"
#include "afe/fpe_pretraining.h"
#include "afe/nfs.h"
#include "afe/random_search.h"
#include "data/registry.h"
#include "data/synthetic.h"
#include "ml/evaluator.h"

namespace eafe {
namespace {

/// End-to-end pipeline test mirroring the paper's full workflow:
/// 1. pre-train the FPE model on public datasets (Algorithm 1),
/// 2. run E-AFE and baselines on target datasets (Algorithm 2),
/// 3. check the paper's qualitative claims at miniature scale.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ml::EvaluatorOptions eval;
    eval.cv_folds = 3;
    eval.rf_trees = 6;
    eval.rf_max_depth = 5;

    afe::FpePretrainingOptions fpe_options;
    fpe_options.trainer.dimensions = {16, 48};
    fpe_options.trainer.schemes = {hashing::MinHashScheme::kCcws};
    fpe_options.trainer.evaluator = eval;
    fpe_options.generated_per_dataset = 12;
    auto trained = afe::PretrainFpe(
        data::MakePublicCollection(8, 0.6, 99), fpe_options);
    ASSERT_TRUE(trained.ok()) << trained.status().ToString();
    fpe_ = new fpe::FpeTrainingResult(std::move(trained).ValueOrDie());

    search_options_ = new afe::SearchOptions();
    search_options_->epochs = 6;
    search_options_->steps_per_agent = 3;
    search_options_->evaluator = eval;
    search_options_->seed = 5;
  }

  static void TearDownTestSuite() {
    delete fpe_;
    delete search_options_;
  }

  static data::Dataset Target() {
    data::MaterializeOptions options;
    options.max_samples = 400;
    options.max_features = 8;
    return data::MakeTargetDatasetByName("German Credit", options)
        .ValueOrDie();
  }

  static fpe::FpeTrainingResult* fpe_;
  static afe::SearchOptions* search_options_;
};

fpe::FpeTrainingResult* PipelineTest::fpe_ = nullptr;
afe::SearchOptions* PipelineTest::search_options_ = nullptr;

TEST_F(PipelineTest, FpeModelSelectedByRecall) {
  EXPECT_TRUE(fpe_->model.trained());
  EXPECT_GT(fpe_->selected.recall, 0.0);
  EXPECT_GT(fpe_->selected.precision, 0.0);
  EXPECT_EQ(fpe_->sweep.size(), 2u);
}

TEST_F(PipelineTest, EafeBeatsBaseScoreAndSavesEvaluations) {
  afe::EafeSearch::Options eafe_options;
  eafe_options.search = *search_options_;
  eafe_options.fpe_model = &fpe_->model;
  eafe_options.stage1_epochs = 3;
  afe::EafeSearch eafe(eafe_options);
  const afe::SearchResult eafe_result =
      eafe.Run(Target()).ValueOrDie();

  afe::NfsSearch nfs(*search_options_);
  const afe::SearchResult nfs_result = nfs.Run(Target()).ValueOrDie();

  // Paper claims: comparable-or-better score with at most ~half the
  // downstream evaluations. At this scale we assert the robust parts:
  // E-AFE improves over the base features and evaluates well under half
  // of NFS's candidate count.
  EXPECT_GT(eafe_result.best_score, eafe_result.base_score - 0.02);
  EXPECT_LT(eafe_result.downstream_evaluations,
            nfs_result.downstream_evaluations);
  EXPECT_LT(static_cast<double>(eafe_result.downstream_evaluations),
            0.8 * static_cast<double>(nfs_result.downstream_evaluations));
  // And the scores are in the same band (E-AFE not collapsing).
  EXPECT_GT(eafe_result.best_score, nfs_result.base_score - 0.02);
}

TEST_F(PipelineTest, AllMethodsImproveOnRegressionTarget) {
  data::MaterializeOptions mat;
  mat.max_samples = 300;
  mat.max_features = 6;
  const data::Dataset target =
      data::MakeTargetDatasetByName("Housing Boston", mat).ValueOrDie();

  afe::RandomSearch random_search(*search_options_);
  const auto random_result = random_search.Run(target).ValueOrDie();
  EXPECT_GE(random_result.best_score, random_result.base_score - 0.02);

  afe::EafeSearch::Options eafe_options;
  eafe_options.search = *search_options_;
  eafe_options.fpe_model = &fpe_->model;
  eafe_options.stage1_epochs = 2;
  afe::EafeSearch eafe(eafe_options);
  const auto eafe_result = eafe.Run(target).ValueOrDie();
  EXPECT_GE(eafe_result.best_score, eafe_result.base_score - 0.02);
}

TEST_F(PipelineTest, SelectedFeaturesTransferToOtherModels) {
  // Table V's protocol: features found with RF evaluated under SVM.
  afe::EafeSearch::Options eafe_options;
  eafe_options.search = *search_options_;
  eafe_options.fpe_model = &fpe_->model;
  eafe_options.stage1_epochs = 2;
  afe::EafeSearch eafe(eafe_options);
  const afe::SearchResult result = eafe.Run(Target()).ValueOrDie();

  ml::EvaluatorOptions svm_options = search_options_->evaluator;
  svm_options.model = ml::ModelKind::kLinearSvm;
  ml::TaskEvaluator svm(svm_options);
  const double svm_base = svm.Score(Target()).ValueOrDie();
  const double svm_enhanced = svm.Score(result.best_dataset).ValueOrDie();
  // The engineered features should not catastrophically hurt another
  // downstream model (the paper reports they transfer robustly).
  EXPECT_GT(svm_enhanced, svm_base - 0.05);
}

TEST_F(PipelineTest, LearningCurveMonotoneAndTimed) {
  afe::EafeSearch::Options eafe_options;
  eafe_options.search = *search_options_;
  eafe_options.fpe_model = &fpe_->model;
  afe::EafeSearch eafe(eafe_options);
  const afe::SearchResult result = eafe.Run(Target()).ValueOrDie();
  ASSERT_EQ(result.curve.size(), search_options_->epochs);
  for (size_t i = 1; i < result.curve.size(); ++i) {
    EXPECT_GE(result.curve[i].best_score,
              result.curve[i - 1].best_score);
    EXPECT_GE(result.curve[i].elapsed_seconds,
              result.curve[i - 1].elapsed_seconds);
  }
}

}  // namespace
}  // namespace eafe
