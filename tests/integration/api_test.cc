// Public-API integration checks: the umbrella header compiles and the
// documented end-to-end flows (CSV in -> search -> CSV out; persisted
// FPE model -> search) work as the README describes.

#include "eafe.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "fpe/serialization.h"

namespace eafe {
namespace {

TEST(ApiTest, CsvRoundTripThroughSearch) {
  // Write a dataset to CSV, read it back as the README shows, search it,
  // export the engineered table.
  data::MaterializeOptions mat;
  mat.max_samples = 150;
  mat.max_features = 5;
  const data::Dataset original =
      data::MakeTargetDatasetByName("hepatitis", mat).ValueOrDie();
  const std::string in_path = ::testing::TempDir() + "/eafe_api_in.csv";
  {
    data::DataFrame with_label = original.features;
    ASSERT_TRUE(with_label
                    .AddColumn(data::Column("label", original.labels))
                    .ok());
    ASSERT_TRUE(data::WriteCsv(with_label, in_path).ok());
  }

  const data::Dataset loaded =
      data::ReadCsvDataset(in_path, "label",
                           data::TaskType::kClassification)
          .ValueOrDie();
  EXPECT_EQ(loaded.num_rows(), original.num_rows());
  EXPECT_EQ(loaded.num_features(), original.num_features());

  afe::SearchOptions options;
  options.epochs = 2;
  options.steps_per_agent = 2;
  options.evaluator.cv_folds = 3;
  options.evaluator.rf_trees = 4;
  afe::RandomSearch search(options);
  const auto result = search.Run(loaded).ValueOrDie();

  const std::string out_path = ::testing::TempDir() + "/eafe_api_out.csv";
  data::DataFrame engineered = result.best_dataset.features;
  ASSERT_TRUE(engineered
                  .AddColumn(data::Column("label",
                                          result.best_dataset.labels))
                  .ok());
  ASSERT_TRUE(data::WriteCsv(engineered, out_path).ok());
  const data::DataFrame reread = data::ReadCsv(out_path).ValueOrDie();
  EXPECT_EQ(reread.num_columns(), engineered.num_columns());
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(ApiTest, PersistedFpeModelDrivesSearch) {
  // The deployment flow: pretrain -> save -> load -> search.
  afe::FpePretrainingOptions pretrain;
  pretrain.trainer.dimensions = {16};
  pretrain.trainer.schemes = {hashing::MinHashScheme::kCcws};
  pretrain.trainer.evaluator.cv_folds = 3;
  pretrain.trainer.evaluator.rf_trees = 4;
  pretrain.generated_per_dataset = 6;
  const auto trained =
      afe::PretrainFpe(data::MakePublicCollection(4, 0.6, 55), pretrain)
          .ValueOrDie();

  const std::string path = ::testing::TempDir() + "/eafe_api_model.txt";
  ASSERT_TRUE(fpe::SaveFpeModel(trained.model, path).ok());
  const fpe::FpeModel loaded = fpe::LoadFpeModel(path).ValueOrDie();

  data::MaterializeOptions mat;
  mat.max_samples = 150;
  mat.max_features = 5;
  const data::Dataset target =
      data::MakeTargetDatasetByName("diabetes", mat).ValueOrDie();
  afe::EafeSearch::Options options;
  options.search.epochs = 2;
  options.search.steps_per_agent = 2;
  options.search.evaluator.cv_folds = 3;
  options.search.evaluator.rf_trees = 4;
  options.stage1_epochs = 2;
  options.fpe_model = &loaded;
  afe::EafeSearch search(options);
  const auto from_loaded = search.Run(target).ValueOrDie();

  // Identical to running with the in-memory model.
  options.fpe_model = &trained.model;
  afe::EafeSearch in_memory(options);
  const auto from_memory = in_memory.Run(target).ValueOrDie();
  EXPECT_DOUBLE_EQ(from_loaded.best_score, from_memory.best_score);
  EXPECT_EQ(from_loaded.downstream_evaluations,
            from_memory.downstream_evaluations);
  std::remove(path.c_str());
}

TEST(ApiTest, PreselectionFeedsSearch) {
  // The paper's wide-dataset protocol: RF-importance pre-selection, then
  // AFE on the reduced table.
  data::SyntheticSpec spec;
  spec.num_samples = 150;
  spec.num_features = 30;
  spec.num_informative = 3;
  spec.seed = 77;
  const data::Dataset wide = data::MakeSynthetic(spec).ValueOrDie();
  ml::PreselectOptions preselect;
  preselect.max_features = 6;
  const data::Dataset narrow =
      ml::PreselectFeatures(wide, preselect).ValueOrDie();
  EXPECT_EQ(narrow.num_features(), 6u);

  afe::SearchOptions options;
  options.epochs = 2;
  options.steps_per_agent = 2;
  options.evaluator.cv_folds = 3;
  options.evaluator.rf_trees = 4;
  afe::NfsSearch search(options);
  EXPECT_TRUE(search.Run(narrow).ok());
}

}  // namespace
}  // namespace eafe
