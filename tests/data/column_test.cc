#include "data/column.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace eafe::data {
namespace {

TEST(ColumnTest, BasicAccess) {
  Column col("age", {1.0, 2.0, 3.0});
  EXPECT_EQ(col.name(), "age");
  EXPECT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.empty());
  EXPECT_DOUBLE_EQ(col[1], 2.0);
  col[1] = 5.0;
  EXPECT_DOUBLE_EQ(col[1], 5.0);
}

TEST(ColumnTest, Statistics) {
  Column col("x", {2.0, 4.0, 6.0, 8.0});
  EXPECT_DOUBLE_EQ(col.Min(), 2.0);
  EXPECT_DOUBLE_EQ(col.Max(), 8.0);
  EXPECT_DOUBLE_EQ(col.Mean(), 5.0);
  EXPECT_NEAR(col.StdDev(), std::sqrt(20.0 / 3.0), 1e-12);
}

TEST(ColumnTest, EmptyColumnStatistics) {
  Column col;
  EXPECT_TRUE(col.empty());
  EXPECT_TRUE(std::isinf(col.Min()));
  EXPECT_TRUE(std::isinf(col.Max()));
  EXPECT_DOUBLE_EQ(col.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(col.StdDev(), 0.0);
}

TEST(ColumnTest, NonFiniteDetectionAndRepair) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  Column col("x", {1.0, nan, inf, -inf, 2.0});
  EXPECT_TRUE(col.HasNonFinite());
  EXPECT_EQ(col.ReplaceNonFinite(0.0), 3u);
  EXPECT_FALSE(col.HasNonFinite());
  EXPECT_DOUBLE_EQ(col[1], 0.0);
  EXPECT_DOUBLE_EQ(col[2], 0.0);
  EXPECT_DOUBLE_EQ(col[4], 2.0);
}

TEST(ColumnTest, CountDistinct) {
  Column col("x", {1.0, 2.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(col.CountDistinct(), 3u);
  Column constant("c", {5.0, 5.0, 5.0});
  EXPECT_EQ(constant.CountDistinct(), 1u);
}

TEST(ColumnTest, Equality) {
  Column a("x", {1.0, 2.0});
  Column b("x", {1.0, 2.0});
  Column c("y", {1.0, 2.0});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(ColumnTest, Rename) {
  Column col("old", {1.0});
  col.set_name("new");
  EXPECT_EQ(col.name(), "new");
}

}  // namespace
}  // namespace eafe::data
