#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace eafe::data {
namespace {

TEST(SyntheticTest, RespectsRequestedShape) {
  SyntheticSpec spec;
  spec.num_samples = 150;
  spec.num_features = 12;
  const Dataset dataset = MakeSynthetic(spec).ValueOrDie();
  EXPECT_EQ(dataset.num_rows(), 150u);
  EXPECT_EQ(dataset.num_features(), 12u);
  EXPECT_TRUE(dataset.Validate().ok());
}

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.seed = 777;
  const Dataset a = MakeSynthetic(spec).ValueOrDie();
  const Dataset b = MakeSynthetic(spec).ValueOrDie();
  EXPECT_TRUE(a.features == b.features);
  EXPECT_EQ(a.labels, b.labels);
  spec.seed = 778;
  const Dataset c = MakeSynthetic(spec).ValueOrDie();
  EXPECT_FALSE(a.features == c.features);
}

TEST(SyntheticTest, ClassificationLabelsAreBalancedIntegers) {
  SyntheticSpec spec;
  spec.task = TaskType::kClassification;
  spec.num_samples = 400;
  spec.num_classes = 2;
  const Dataset dataset = MakeSynthetic(spec).ValueOrDie();
  size_t positives = 0;
  for (double label : dataset.labels) {
    EXPECT_TRUE(label == 0.0 || label == 1.0);
    positives += label == 1.0;
  }
  EXPECT_NEAR(static_cast<double>(positives) / 400.0, 0.5, 0.1);
}

TEST(SyntheticTest, MultiClassSupported) {
  SyntheticSpec spec;
  spec.num_samples = 300;
  spec.num_classes = 3;
  const Dataset dataset = MakeSynthetic(spec).ValueOrDie();
  std::set<int> classes;
  for (double label : dataset.labels) {
    classes.insert(static_cast<int>(label));
  }
  EXPECT_EQ(classes.size(), 3u);
}

TEST(SyntheticTest, RegressionLabelsRoughlyStandardized) {
  SyntheticSpec spec;
  spec.task = TaskType::kRegression;
  spec.num_samples = 500;
  spec.noise = 0.1;
  const Dataset dataset = MakeSynthetic(spec).ValueOrDie();
  double mean = 0.0;
  for (double y : dataset.labels) mean += y;
  mean /= 500.0;
  EXPECT_NEAR(mean, 0.0, 0.2);
  double var = 0.0;
  for (double y : dataset.labels) var += (y - mean) * (y - mean);
  var /= 500.0;
  EXPECT_NEAR(std::sqrt(var), 1.0, 0.25);
}

TEST(SyntheticTest, RejectsInvalidSpecs) {
  SyntheticSpec spec;
  spec.num_samples = 5;
  EXPECT_FALSE(MakeSynthetic(spec).ok());
  spec = SyntheticSpec();
  spec.num_features = 1;
  EXPECT_FALSE(MakeSynthetic(spec).ok());
  spec = SyntheticSpec();
  spec.num_classes = 1;
  EXPECT_FALSE(MakeSynthetic(spec).ok());
  spec = SyntheticSpec();
  spec.redundant_fraction = 1.5;
  EXPECT_FALSE(MakeSynthetic(spec).ok());
}

TEST(SyntheticTest, FeaturesAreFinite) {
  SyntheticSpec spec;
  spec.num_samples = 200;
  spec.num_features = 20;
  const Dataset dataset = MakeSynthetic(spec).ValueOrDie();
  for (const Column& col : dataset.features.columns()) {
    EXPECT_FALSE(col.HasNonFinite()) << col.name();
  }
}

TEST(PublicCollectionTest, ProducesRequestedCountAndMix) {
  const std::vector<Dataset> datasets = MakePublicCollection(20, 0.6, 42);
  ASSERT_EQ(datasets.size(), 20u);
  size_t classification = 0;
  for (const Dataset& d : datasets) {
    EXPECT_TRUE(d.Validate().ok()) << d.name;
    classification += d.task == TaskType::kClassification;
  }
  // ~60% classification, loose tolerance for 20 draws.
  EXPECT_GE(classification, 6u);
  EXPECT_LE(classification, 18u);
}

TEST(PublicCollectionTest, DeterministicInSeed) {
  const auto a = MakePublicCollection(3, 0.5, 7);
  const auto b = MakePublicCollection(3, 0.5, 7);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(a[i].features == b[i].features);
  }
}

TEST(PublicCollectionTest, ShapesVary) {
  const auto datasets = MakePublicCollection(10, 0.5, 11);
  std::set<size_t> row_counts;
  for (const Dataset& d : datasets) row_counts.insert(d.num_rows());
  EXPECT_GT(row_counts.size(), 3u);
}

}  // namespace
}  // namespace eafe::data
