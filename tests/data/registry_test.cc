#include "data/registry.h"

#include <gtest/gtest.h>

namespace eafe::data {
namespace {

TEST(RegistryTest, HasAll36TargetDatasets) {
  EXPECT_EQ(PaperTargetDatasets().size(), 36u);
}

TEST(RegistryTest, TableOneSubset) {
  const auto& table_one = TableOneDatasets();
  ASSERT_EQ(table_one.size(), 4u);
  EXPECT_EQ(table_one[0].name, "PimaIndian");
  EXPECT_EQ(table_one[0].paper_samples, 768u);
  EXPECT_EQ(table_one[0].paper_features, 8u);
}

TEST(RegistryTest, TaskMixMatchesPaper) {
  size_t classification = 0;
  size_t regression = 0;
  for (const DatasetInfo& info : PaperTargetDatasets()) {
    (info.task == TaskType::kClassification ? classification : regression)++;
  }
  EXPECT_EQ(classification, 26u);  // Paper: 26 classification datasets.
  EXPECT_EQ(regression, 10u);      // Paper: 10 regression datasets.
}

TEST(RegistryTest, LookupIsCaseInsensitive) {
  EXPECT_TRUE(FindDatasetInfo("pimaindian").ok());
  EXPECT_TRUE(FindDatasetInfo("HIGGS BOSON").ok());
  EXPECT_FALSE(FindDatasetInfo("not a dataset").ok());
}

TEST(RegistryTest, KnownShapes) {
  const DatasetInfo higgs = FindDatasetInfo("Higgs Boson").ValueOrDie();
  EXPECT_EQ(higgs.paper_samples, 50000u);
  EXPECT_EQ(higgs.paper_features, 28u);
  const DatasetInfo ovary = FindDatasetInfo("AP. ovary").ValueOrDie();
  EXPECT_EQ(ovary.paper_features, 10936u);
  EXPECT_EQ(ovary.task, TaskType::kClassification);
  const DatasetInfo boston =
      FindDatasetInfo("Housing Boston").ValueOrDie();
  EXPECT_EQ(boston.task, TaskType::kRegression);
}

TEST(RegistryTest, MaterializeCapsLargeShapes) {
  MaterializeOptions options;
  options.max_samples = 500;
  options.max_features = 16;
  const Dataset higgs =
      MakeTargetDatasetByName("Higgs Boson", options).ValueOrDie();
  EXPECT_EQ(higgs.num_rows(), 500u);
  EXPECT_EQ(higgs.num_features(), 16u);
}

TEST(RegistryTest, MaterializeKeepsSmallShapesExact) {
  const Dataset pima = MakeTargetDatasetByName("PimaIndian").ValueOrDie();
  EXPECT_EQ(pima.num_rows(), 768u);
  EXPECT_EQ(pima.num_features(), 8u);
  EXPECT_EQ(pima.task, TaskType::kClassification);
  EXPECT_TRUE(pima.Validate().ok());
}

TEST(RegistryTest, MaterializeDeterministicPerNameAndSeed) {
  const Dataset a = MakeTargetDatasetByName("sonar").ValueOrDie();
  const Dataset b = MakeTargetDatasetByName("sonar").ValueOrDie();
  EXPECT_TRUE(a.features == b.features);
  MaterializeOptions other;
  other.seed = 1234;
  const Dataset c = MakeTargetDatasetByName("sonar", other).ValueOrDie();
  EXPECT_FALSE(a.features == c.features);
}

TEST(RegistryTest, DifferentDatasetsDiffer) {
  const Dataset a = MakeTargetDatasetByName("diabetes").ValueOrDie();
  const Dataset b = MakeTargetDatasetByName("PimaIndian").ValueOrDie();
  // Same shapes (768x8) but different planted structure.
  EXPECT_EQ(a.num_rows(), b.num_rows());
  EXPECT_FALSE(a.features == b.features);
}

TEST(RegistryTest, AllTargetsMaterializeAndValidate) {
  MaterializeOptions options;
  options.max_samples = 120;
  options.max_features = 10;
  for (const DatasetInfo& info : PaperTargetDatasets()) {
    const auto dataset = MakeTargetDataset(info, options);
    ASSERT_TRUE(dataset.ok()) << info.name;
    EXPECT_TRUE(dataset->Validate().ok()) << info.name;
    EXPECT_EQ(dataset->task, info.task) << info.name;
  }
}

}  // namespace
}  // namespace eafe::data
