#include "data/arff.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

namespace eafe::data {
namespace {

constexpr char kSmallArff[] = R"(% A comment line
@relation weather

@attribute temperature NUMERIC
@attribute humidity REAL
@attribute windy {false, true}
@attribute play {no, yes}

@data
85, 85.5, false, no
80, 90, true, no
% mid-data comment
70, 96, false, yes
68, 80.2, true, yes
)";

TEST(ArffTest, ParsesNumericAndNominal) {
  const DataFrame frame = ParseArff(kSmallArff).ValueOrDie();
  EXPECT_EQ(frame.num_columns(), 4u);
  EXPECT_EQ(frame.num_rows(), 4u);
  EXPECT_EQ(frame.ColumnNames(),
            (std::vector<std::string>{"temperature", "humidity", "windy",
                                      "play"}));
  EXPECT_DOUBLE_EQ(frame.column(0)[0], 85.0);
  EXPECT_DOUBLE_EQ(frame.column(1)[3], 80.2);
  // Nominal encoding by declaration order: false=0, true=1; no=0, yes=1.
  EXPECT_DOUBLE_EQ(frame.column(2)[1], 1.0);
  EXPECT_DOUBLE_EQ(frame.column(3)[2], 1.0);
  EXPECT_DOUBLE_EQ(frame.column(3)[0], 0.0);
}

TEST(ArffTest, CaseInsensitiveKeywords) {
  const std::string text =
      "@RELATION r\n@ATTRIBUTE x numeric\n@ATTRIBUTE y numeric\n@DATA\n"
      "1, 2\n";
  const DataFrame frame = ParseArff(text).ValueOrDie();
  EXPECT_EQ(frame.num_rows(), 1u);
}

TEST(ArffTest, MissingValuesBecomeNaN) {
  const std::string text =
      "@relation r\n@attribute x numeric\n@attribute c {a,b}\n@data\n"
      "?, a\n1, ?\n";
  const DataFrame frame = ParseArff(text).ValueOrDie();
  EXPECT_TRUE(std::isnan(frame.column(0)[0]));
  EXPECT_TRUE(std::isnan(frame.column(1)[1]));
}

TEST(ArffTest, QuotedNamesAndValues) {
  const std::string text =
      "@relation r\n"
      "@attribute 'my col' numeric\n"
      "@attribute cls {'class a', 'class b'}\n"
      "@data\n"
      "3.5, 'class b'\n";
  const DataFrame frame = ParseArff(text).ValueOrDie();
  EXPECT_TRUE(frame.ColumnIndex("my col").ok());
  EXPECT_DOUBLE_EQ(frame.column(1)[0], 1.0);
}

TEST(ArffTest, RejectsUnknownCategory) {
  const std::string text =
      "@relation r\n@attribute c {a,b}\n@attribute d numeric\n@data\n"
      "z, 0\n";
  EXPECT_FALSE(ParseArff(text).ok());
}

TEST(ArffTest, RejectsUnsupportedConstructs) {
  EXPECT_EQ(ParseArff("@relation r\n@attribute s string\n@data\nx\n")
                .status()
                .code(),
            StatusCode::kNotImplemented);
  EXPECT_EQ(ParseArff("@relation r\n@attribute x numeric\n@data\n{0 1}\n")
                .status()
                .code(),
            StatusCode::kNotImplemented);
}

TEST(ArffTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseArff("").ok());                       // No @data.
  EXPECT_FALSE(ParseArff("@data\n1\n").ok());             // No attributes.
  EXPECT_FALSE(
      ParseArff("@relation r\n@attribute x numeric\n@data\n1, 2\n").ok());
  EXPECT_FALSE(
      ParseArff("@relation r\n@attribute x\n@data\n1\n").ok());  // No type.
}

TEST(ArffTest, FileRoundTripAndDataset) {
  const std::string path = ::testing::TempDir() + "/eafe_test.arff";
  {
    std::ofstream out(path);
    out << kSmallArff;
  }
  const Dataset dataset =
      ReadArffDataset(path, "play", TaskType::kClassification)
          .ValueOrDie();
  EXPECT_EQ(dataset.num_features(), 3u);
  EXPECT_EQ(dataset.labels, (std::vector<double>{0, 0, 1, 1}));
  EXPECT_FALSE(
      ReadArffDataset(path, "absent", TaskType::kClassification).ok());
  std::remove(path.c_str());
  EXPECT_EQ(ReadArff(path).status().code(), StatusCode::kIoError);
}

TEST(ArffTest, LabelLookupIsCaseInsensitive) {
  const std::string path = ::testing::TempDir() + "/eafe_test2.arff";
  {
    std::ofstream out(path);
    out << kSmallArff;
  }
  EXPECT_TRUE(
      ReadArffDataset(path, "PLAY", TaskType::kClassification).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eafe::data
