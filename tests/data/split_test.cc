#include "data/split.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace eafe::data {
namespace {

TEST(TrainTestSplitTest, PartitionsAllRows) {
  Rng rng(1);
  const TrainTestIndices split =
      TrainTestSplitIndices(100, 0.25, &rng).ValueOrDie();
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_EQ(split.train.size(), 75u);
  std::set<size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(TrainTestSplitTest, RejectsBadFraction) {
  Rng rng(1);
  EXPECT_FALSE(TrainTestSplitIndices(10, 0.0, &rng).ok());
  EXPECT_FALSE(TrainTestSplitIndices(10, 1.0, &rng).ok());
  EXPECT_FALSE(TrainTestSplitIndices(1, 0.5, &rng).ok());
}

TEST(TrainTestSplitTest, AtLeastOneEachSide) {
  Rng rng(1);
  const TrainTestIndices split =
      TrainTestSplitIndices(3, 0.01, &rng).ValueOrDie();
  EXPECT_GE(split.test.size(), 1u);
  EXPECT_GE(split.train.size(), 1u);
}

TEST(TrainTestSplitTest, SplitsDataset) {
  Dataset dataset;
  dataset.task = TaskType::kRegression;
  std::vector<double> values(20);
  for (size_t i = 0; i < 20; ++i) values[i] = static_cast<double>(i);
  ASSERT_TRUE(dataset.features.AddColumn(Column("x", values)).ok());
  dataset.labels = values;
  Rng rng(2);
  const TrainTestDatasets split =
      TrainTestSplit(dataset, 0.3, &rng).ValueOrDie();
  EXPECT_EQ(split.test.num_rows(), 6u);
  EXPECT_EQ(split.train.num_rows(), 14u);
  // Features and labels stay aligned.
  for (size_t i = 0; i < split.test.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(split.test.features.column(0)[i],
                     split.test.labels[i]);
  }
}

TEST(KFoldTest, FoldsPartitionTestSets) {
  Rng rng(3);
  const std::vector<Fold> folds = KFoldIndices(23, 5, &rng).ValueOrDie();
  ASSERT_EQ(folds.size(), 5u);
  std::set<size_t> all_test;
  for (const Fold& fold : folds) {
    for (size_t i : fold.test) {
      EXPECT_TRUE(all_test.insert(i).second) << "row in two test sets";
    }
    EXPECT_EQ(fold.train.size() + fold.test.size(), 23u);
  }
  EXPECT_EQ(all_test.size(), 23u);
}

TEST(KFoldTest, TrainAndTestDisjoint) {
  Rng rng(4);
  const std::vector<Fold> folds = KFoldIndices(30, 3, &rng).ValueOrDie();
  for (const Fold& fold : folds) {
    std::set<size_t> train(fold.train.begin(), fold.train.end());
    for (size_t i : fold.test) EXPECT_EQ(train.count(i), 0u);
  }
}

TEST(KFoldTest, RejectsBadK) {
  Rng rng(5);
  EXPECT_FALSE(KFoldIndices(10, 1, &rng).ok());
  EXPECT_FALSE(KFoldIndices(3, 4, &rng).ok());
}

TEST(StratifiedKFoldTest, PreservesClassBalance) {
  Rng rng(6);
  // 40 of class 0, 20 of class 1.
  std::vector<double> labels;
  for (int i = 0; i < 40; ++i) labels.push_back(0);
  for (int i = 0; i < 20; ++i) labels.push_back(1);
  const std::vector<Fold> folds =
      StratifiedKFoldIndices(labels, 4, &rng).ValueOrDie();
  for (const Fold& fold : folds) {
    std::map<int, int> counts;
    for (size_t i : fold.test) ++counts[static_cast<int>(labels[i])];
    EXPECT_EQ(counts[0], 10);
    EXPECT_EQ(counts[1], 5);
  }
}

TEST(StratifiedKFoldTest, CoversAllRowsExactlyOnce) {
  Rng rng(7);
  std::vector<double> labels;
  for (int i = 0; i < 31; ++i) labels.push_back(i % 3);
  const std::vector<Fold> folds =
      StratifiedKFoldIndices(labels, 5, &rng).ValueOrDie();
  std::set<size_t> all_test;
  for (const Fold& fold : folds) {
    for (size_t i : fold.test) {
      EXPECT_TRUE(all_test.insert(i).second);
    }
  }
  EXPECT_EQ(all_test.size(), labels.size());
}

TEST(StratifiedKFoldTest, SmallMinorityClassStillSplits) {
  Rng rng(8);
  std::vector<double> labels(20, 0.0);
  labels[3] = 1.0;
  labels[11] = 1.0;
  // k=2 with a 2-member minority: one per fold.
  const std::vector<Fold> folds =
      StratifiedKFoldIndices(labels, 2, &rng).ValueOrDie();
  for (const Fold& fold : folds) {
    int minority = 0;
    for (size_t i : fold.test) minority += labels[i] == 1.0;
    EXPECT_EQ(minority, 1);
  }
}

}  // namespace
}  // namespace eafe::data
