#include "data/meta_features.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/rng.h"

namespace eafe::data {
namespace {

size_t Index(const std::string& name) {
  const auto& names = MetaFeatureNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  ADD_FAILURE() << "unknown meta-feature " << name;
  return 0;
}

TEST(MetaFeaturesTest, FixedSizeAndFinite) {
  Rng rng(1);
  std::vector<double> values(500);
  for (double& v : values) v = rng.Normal(3.0, 2.0);
  const auto meta = ComputeMetaFeatures(values).ValueOrDie();
  ASSERT_EQ(meta.size(), kNumMetaFeatures);
  ASSERT_EQ(MetaFeatureNames().size(), kNumMetaFeatures);
  for (double m : meta) EXPECT_TRUE(std::isfinite(m));
}

TEST(MetaFeaturesTest, GaussianMoments) {
  Rng rng(2);
  std::vector<double> values(20000);
  for (double& v : values) v = rng.Normal();
  const auto meta = ComputeMetaFeatures(values).ValueOrDie();
  EXPECT_NEAR(meta[Index("skewness")], 0.0, 0.1);
  EXPECT_NEAR(meta[Index("kurtosis_excess")], 0.0, 0.2);
  EXPECT_NEAR(meta[Index("negative_ratio")], 0.5, 0.02);
  EXPECT_NEAR(meta[Index("outlier_ratio_3sd")], 0.0027, 0.002);
}

TEST(MetaFeaturesTest, SkewedDistributionDetected) {
  Rng rng(3);
  std::vector<double> values(10000);
  for (double& v : values) v = std::exp(rng.Normal(0.0, 1.0));
  const auto meta = ComputeMetaFeatures(values).ValueOrDie();
  EXPECT_GT(meta[Index("skewness")], 2.0);
  EXPECT_DOUBLE_EQ(meta[Index("negative_ratio")], 0.0);
}

TEST(MetaFeaturesTest, UniformEntropyHigh) {
  Rng rng(4);
  std::vector<double> values(10000);
  for (double& v : values) v = rng.Uniform();
  const auto meta = ComputeMetaFeatures(values).ValueOrDie();
  EXPECT_GT(meta[Index("entropy_10bin")], 0.98);
  EXPECT_NEAR(meta[Index("top_bin_mass")], 0.1, 0.02);
}

TEST(MetaFeaturesTest, SpikyDistributionLowEntropy) {
  Rng rng(5);
  std::vector<double> values(5000);
  for (double& v : values) {
    v = rng.Bernoulli(0.02) ? rng.Normal(0.0, 100.0) : rng.Normal(0.0, 0.01);
  }
  const auto meta = ComputeMetaFeatures(values).ValueOrDie();
  EXPECT_LT(meta[Index("entropy_10bin")], 0.5);
  EXPECT_GT(meta[Index("top_bin_mass")], 0.8);
}

TEST(MetaFeaturesTest, IntegerCodesDetected) {
  const std::vector<double> codes = {0, 1, 2, 1, 0, 2, 1, 1, 0, 2};
  const auto meta = ComputeMetaFeatures(codes).ValueOrDie();
  EXPECT_DOUBLE_EQ(meta[Index("integer_ratio")], 1.0);
  EXPECT_DOUBLE_EQ(meta[Index("unique_ratio")], 0.3);
}

TEST(MetaFeaturesTest, ConstantColumnIsWellDefined) {
  const std::vector<double> constant(50, 7.0);
  const auto meta = ComputeMetaFeatures(constant).ValueOrDie();
  for (double m : meta) EXPECT_TRUE(std::isfinite(m));
  EXPECT_DOUBLE_EQ(meta[Index("unique_ratio")], 1.0 / 50.0);
  EXPECT_DOUBLE_EQ(meta[Index("top_bin_mass")], 1.0);
}

TEST(MetaFeaturesTest, ClipsExtremeMoments) {
  // One enormous outlier drives raw kurtosis into the thousands.
  std::vector<double> values(1000, 0.0);
  Rng rng(6);
  for (double& v : values) v = rng.Normal();
  values[0] = 1e9;
  const auto meta = ComputeMetaFeatures(values).ValueOrDie();
  EXPECT_LE(std::fabs(meta[Index("kurtosis_excess")]), 500.0);
  EXPECT_LE(std::fabs(meta[Index("skewness")]), 50.0);
}

TEST(MetaFeaturesTest, RejectsBadInput) {
  EXPECT_FALSE(ComputeMetaFeatures({}).ok());
  EXPECT_FALSE(ComputeMetaFeatures(
                   {1.0, std::numeric_limits<double>::quiet_NaN()})
                   .ok());
  EXPECT_FALSE(ComputeMetaFeatures(
                   {1.0, std::numeric_limits<double>::infinity()})
                   .ok());
}

TEST(MetaFeaturesTest, ScaleInvariantWhereDocumented) {
  Rng rng(7);
  std::vector<double> values(2000);
  for (double& v : values) v = rng.Normal(5.0, 2.0);
  std::vector<double> scaled(values.size());
  for (size_t i = 0; i < values.size(); ++i) scaled[i] = values[i] * 1000.0;
  const auto a = ComputeMetaFeatures(values).ValueOrDie();
  const auto b = ComputeMetaFeatures(scaled).ValueOrDie();
  // Moments of standardized values and ratios are scale-free.
  for (const char* name : {"skewness", "kurtosis_excess", "min_z", "max_z",
                           "unique_ratio", "entropy_10bin"}) {
    EXPECT_NEAR(a[Index(name)], b[Index(name)], 1e-9) << name;
  }
}

}  // namespace
}  // namespace eafe::data
