#include "data/csv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

namespace eafe::data {
namespace {

TEST(CsvTest, ParsesWithHeader) {
  const DataFrame frame =
      ParseCsv("a,b\n1,2\n3,4\n").ValueOrDie();
  EXPECT_EQ(frame.num_rows(), 2u);
  EXPECT_EQ(frame.ColumnNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_DOUBLE_EQ(frame.column(1)[1], 4.0);
}

TEST(CsvTest, ParsesWithoutHeader) {
  CsvOptions options;
  options.has_header = false;
  const DataFrame frame = ParseCsv("1,2\n3,4\n", options).ValueOrDie();
  EXPECT_EQ(frame.ColumnNames(), (std::vector<std::string>{"f0", "f1"}));
}

TEST(CsvTest, EmptyFieldBecomesNaN) {
  const DataFrame frame = ParseCsv("a,b\n1,\n2,3\n").ValueOrDie();
  EXPECT_TRUE(std::isnan(frame.column(1)[0]));
  EXPECT_DOUBLE_EQ(frame.column(1)[1], 3.0);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
}

TEST(CsvTest, RejectsNonNumeric) {
  EXPECT_FALSE(ParseCsv("a,b\n1,hello\n").ok());
}

TEST(CsvTest, SkipsBlankLinesAndCrLf) {
  const DataFrame frame =
      ParseCsv("a,b\r\n1,2\r\n\r\n3,4\r\n").ValueOrDie();
  EXPECT_EQ(frame.num_rows(), 2u);
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  const DataFrame frame = ParseCsv("a;b\n1;2\n", options).ValueOrDie();
  EXPECT_EQ(frame.num_columns(), 2u);
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_EQ(ReadCsv("/nonexistent/path.csv").status().code(),
            StatusCode::kIoError);
}

TEST(CsvTest, WriteReadRoundTrip) {
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column("x", {1.5, -2.25, 1e-9})).ok());
  ASSERT_TRUE(frame.AddColumn(Column("y", {3.0, 4.0, 5.0})).ok());
  const std::string path = testing::TempDir() + "/eafe_csv_test.csv";
  ASSERT_TRUE(WriteCsv(frame, path).ok());
  const DataFrame back = ReadCsv(path).ValueOrDie();
  ASSERT_EQ(back.num_rows(), 3u);
  for (size_t c = 0; c < 2; ++c) {
    for (size_t r = 0; r < 3; ++r) {
      EXPECT_DOUBLE_EQ(back.column(c)[r], frame.column(c)[r]);
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, NaNRoundTripsAsEmpty) {
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(
      Column("x", {1.0, std::nan(""), 3.0})).ok());
  const std::string path = testing::TempDir() + "/eafe_csv_nan.csv";
  ASSERT_TRUE(WriteCsv(frame, path).ok());
  const DataFrame back = ReadCsv(path).ValueOrDie();
  EXPECT_TRUE(std::isnan(back.column(0)[1]));
  std::remove(path.c_str());
}

TEST(CsvTest, ReadCsvDatasetSplitsLabel) {
  const std::string path = testing::TempDir() + "/eafe_csv_dataset.csv";
  {
    DataFrame frame;
    ASSERT_TRUE(frame.AddColumn(Column("f", {1, 2, 3, 4})).ok());
    ASSERT_TRUE(frame.AddColumn(Column("target", {0, 1, 0, 1})).ok());
    ASSERT_TRUE(WriteCsv(frame, path).ok());
  }
  const Dataset dataset =
      ReadCsvDataset(path, "target", TaskType::kClassification)
          .ValueOrDie();
  EXPECT_EQ(dataset.num_features(), 1u);
  EXPECT_EQ(dataset.labels, (std::vector<double>{0, 1, 0, 1}));
  EXPECT_FALSE(
      ReadCsvDataset(path, "missing", TaskType::kClassification).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eafe::data
