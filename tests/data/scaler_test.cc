#include "data/scaler.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eafe::data {
namespace {

DataFrame MakeFrame() {
  DataFrame frame;
  EXPECT_TRUE(frame.AddColumn(Column("a", {1, 2, 3, 4, 5})).ok());
  EXPECT_TRUE(frame.AddColumn(Column("b", {10, 10, 10, 10, 10})).ok());
  return frame;
}

TEST(StandardScalerTest, ZeroMeanUnitVariance) {
  DataFrame frame = MakeFrame();
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(frame).ok());
  const DataFrame scaled = scaler.Transform(frame).ValueOrDie();
  EXPECT_NEAR(scaled.column(0).Mean(), 0.0, 1e-12);
  EXPECT_NEAR(scaled.column(0).StdDev(), 1.0, 1e-12);
}

TEST(StandardScalerTest, ConstantColumnMapsToZero) {
  DataFrame frame = MakeFrame();
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(frame).ok());
  const DataFrame scaled = scaler.Transform(frame).ValueOrDie();
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_DOUBLE_EQ(scaled.column(1)[r], 0.0);
  }
}

TEST(StandardScalerTest, TransformUsesTrainingStatistics) {
  DataFrame train = MakeFrame();
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(train).ok());
  DataFrame test;
  ASSERT_TRUE(test.AddColumn(Column("a", {3.0})).ok());
  ASSERT_TRUE(test.AddColumn(Column("b", {10.0})).ok());
  const DataFrame scaled = scaler.Transform(test).ValueOrDie();
  // Mean of train column a is 3 -> maps to 0.
  EXPECT_NEAR(scaled.column(0)[0], 0.0, 1e-12);
}

TEST(StandardScalerTest, ErrorsBeforeFitAndOnMismatch) {
  StandardScaler scaler;
  DataFrame frame = MakeFrame();
  EXPECT_FALSE(scaler.Transform(frame).ok());
  ASSERT_TRUE(scaler.Fit(frame).ok());
  DataFrame narrow;
  ASSERT_TRUE(narrow.AddColumn(Column("a", {1.0})).ok());
  EXPECT_FALSE(scaler.Transform(narrow).ok());
  DataFrame empty;
  EXPECT_FALSE(scaler.Fit(empty).ok());
}

TEST(MinMaxScalerTest, MapsToUnitInterval) {
  DataFrame frame = MakeFrame();
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(frame).ok());
  const DataFrame scaled = scaler.Transform(frame).ValueOrDie();
  EXPECT_DOUBLE_EQ(scaled.column(0).Min(), 0.0);
  EXPECT_DOUBLE_EQ(scaled.column(0).Max(), 1.0);
  EXPECT_DOUBLE_EQ(scaled.column(0)[2], 0.5);
}

TEST(MinMaxScalerTest, ConstantColumnMapsToZero) {
  DataFrame frame = MakeFrame();
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(frame).ok());
  const DataFrame scaled = scaler.Transform(frame).ValueOrDie();
  EXPECT_DOUBLE_EQ(scaled.column(1).Min(), 0.0);
  EXPECT_DOUBLE_EQ(scaled.column(1).Max(), 0.0);
}

TEST(MinMaxScalerTest, ErrorsBeforeFit) {
  MinMaxScaler scaler;
  EXPECT_FALSE(scaler.Transform(MakeFrame()).ok());
}

}  // namespace
}  // namespace eafe::data
