#include "data/dataframe.h"

#include <gtest/gtest.h>

namespace eafe::data {
namespace {

DataFrame MakeFrame() {
  DataFrame frame;
  EXPECT_TRUE(frame.AddColumn(Column("a", {1, 2, 3})).ok());
  EXPECT_TRUE(frame.AddColumn(Column("b", {4, 5, 6})).ok());
  return frame;
}

TEST(DataFrameTest, AddAndAccess) {
  DataFrame frame = MakeFrame();
  EXPECT_EQ(frame.num_rows(), 3u);
  EXPECT_EQ(frame.num_columns(), 2u);
  EXPECT_DOUBLE_EQ(frame.column(1)[2], 6.0);
  EXPECT_EQ(frame.ColumnIndex("b").ValueOrDie(), 1u);
  EXPECT_EQ((*frame.ColumnByName("a"))->name(), "a");
  EXPECT_EQ(frame.ColumnNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(DataFrameTest, RejectsDuplicateName) {
  DataFrame frame = MakeFrame();
  const Status status = frame.AddColumn(Column("a", {7, 8, 9}));
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(DataFrameTest, RejectsMismatchedLength) {
  DataFrame frame = MakeFrame();
  EXPECT_EQ(frame.AddColumn(Column("c", {1, 2})).code(),
            StatusCode::kInvalidArgument);
}

TEST(DataFrameTest, RejectsEmptyName) {
  DataFrame frame;
  EXPECT_FALSE(frame.AddColumn(Column("", {1})).ok());
}

TEST(DataFrameTest, MissingColumnIsNotFound) {
  DataFrame frame = MakeFrame();
  EXPECT_EQ(frame.ColumnIndex("zzz").status().code(), StatusCode::kNotFound);
}

TEST(DataFrameTest, DropColumnReindexes) {
  DataFrame frame = MakeFrame();
  ASSERT_TRUE(frame.AddColumn(Column("c", {7, 8, 9})).ok());
  ASSERT_TRUE(frame.DropColumn(0).ok());
  EXPECT_EQ(frame.num_columns(), 2u);
  EXPECT_EQ(frame.ColumnIndex("b").ValueOrDie(), 0u);
  EXPECT_EQ(frame.ColumnIndex("c").ValueOrDie(), 1u);
  EXPECT_FALSE(frame.ColumnIndex("a").ok());
  // Name can be reused after dropping.
  EXPECT_TRUE(frame.AddColumn(Column("a", {0, 0, 0})).ok());
}

TEST(DataFrameTest, DropByName) {
  DataFrame frame = MakeFrame();
  EXPECT_TRUE(frame.DropColumnByName("a").ok());
  EXPECT_FALSE(frame.DropColumnByName("a").ok());
  EXPECT_EQ(frame.num_columns(), 1u);
}

TEST(DataFrameTest, DropOutOfRange) {
  DataFrame frame = MakeFrame();
  EXPECT_EQ(frame.DropColumn(5).code(), StatusCode::kOutOfRange);
}

TEST(DataFrameTest, SelectRowsWithRepeats) {
  DataFrame frame = MakeFrame();
  const DataFrame sub = frame.SelectRows({2, 0, 2});
  EXPECT_EQ(sub.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(sub.column(0)[0], 3.0);
  EXPECT_DOUBLE_EQ(sub.column(0)[1], 1.0);
  EXPECT_DOUBLE_EQ(sub.column(0)[2], 3.0);
}

TEST(DataFrameTest, SelectColumnsReorders) {
  DataFrame frame = MakeFrame();
  const DataFrame sub = frame.SelectColumns({1, 0});
  EXPECT_EQ(sub.ColumnNames(), (std::vector<std::string>{"b", "a"}));
}

TEST(DataFrameTest, MatrixRoundTrip) {
  DataFrame frame = MakeFrame();
  const Matrix m = frame.ToMatrix();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  const DataFrame back =
      DataFrame::FromMatrix(m, {"a", "b"}).ValueOrDie();
  EXPECT_TRUE(back == frame);
}

TEST(DataFrameTest, FromMatrixGeneratesNames) {
  const Matrix m = Matrix::FromRows({{1, 2}});
  const DataFrame frame = DataFrame::FromMatrix(m).ValueOrDie();
  EXPECT_EQ(frame.ColumnNames(), (std::vector<std::string>{"f0", "f1"}));
  EXPECT_FALSE(DataFrame::FromMatrix(m, {"only_one"}).ok());
}

TEST(DataFrameTest, CopyRow) {
  DataFrame frame = MakeFrame();
  std::vector<double> row;
  frame.CopyRow(1, &row);
  EXPECT_EQ(row, (std::vector<double>{2.0, 5.0}));
}

TEST(DatasetTest, ValidateAcceptsGoodDataset) {
  Dataset dataset;
  dataset.task = TaskType::kClassification;
  ASSERT_TRUE(dataset.features.AddColumn(Column("x", {1, 2, 3, 4})).ok());
  dataset.labels = {0, 1, 0, 1};
  EXPECT_TRUE(dataset.Validate().ok());
  EXPECT_EQ(dataset.NumClasses(), 2u);
}

TEST(DatasetTest, ValidateRejectsBadShapes) {
  Dataset dataset;
  dataset.labels = {0, 1};
  EXPECT_FALSE(dataset.Validate().ok());  // No features.
  ASSERT_TRUE(dataset.features.AddColumn(Column("x", {1, 2, 3})).ok());
  EXPECT_FALSE(dataset.Validate().ok());  // Length mismatch.
}

TEST(DatasetTest, ValidateRejectsNonIntegerClassLabels) {
  Dataset dataset;
  dataset.task = TaskType::kClassification;
  ASSERT_TRUE(dataset.features.AddColumn(Column("x", {1, 2})).ok());
  dataset.labels = {0.0, 0.5};
  EXPECT_FALSE(dataset.Validate().ok());
}

TEST(DatasetTest, ValidateRejectsSingleClass) {
  Dataset dataset;
  dataset.task = TaskType::kClassification;
  ASSERT_TRUE(dataset.features.AddColumn(Column("x", {1, 2})).ok());
  dataset.labels = {1.0, 1.0};
  EXPECT_FALSE(dataset.Validate().ok());
}

TEST(DatasetTest, RegressionAllowsRealLabels) {
  Dataset dataset;
  dataset.task = TaskType::kRegression;
  ASSERT_TRUE(dataset.features.AddColumn(Column("x", {1, 2})).ok());
  dataset.labels = {0.1, -2.7};
  EXPECT_TRUE(dataset.Validate().ok());
  EXPECT_EQ(dataset.NumClasses(), 0u);
}

TEST(DatasetTest, SelectRowsKeepsAlignment) {
  Dataset dataset;
  dataset.task = TaskType::kRegression;
  ASSERT_TRUE(dataset.features.AddColumn(Column("x", {10, 20, 30})).ok());
  dataset.labels = {1, 2, 3};
  const Dataset sub = dataset.SelectRows({2, 0});
  EXPECT_DOUBLE_EQ(sub.features.column(0)[0], 30.0);
  EXPECT_DOUBLE_EQ(sub.labels[0], 3.0);
  EXPECT_DOUBLE_EQ(sub.labels[1], 1.0);
}

TEST(TaskTypeTest, ToString) {
  EXPECT_EQ(TaskTypeToString(TaskType::kClassification), "classification");
  EXPECT_EQ(TaskTypeToString(TaskType::kRegression), "regression");
}

}  // namespace
}  // namespace eafe::data
