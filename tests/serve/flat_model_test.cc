#include "serve/flat_model.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "data/synthetic.h"
#include "ml/feature_binner.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/random_forest.h"

namespace eafe::serve {
namespace {

data::Dataset MakeData(data::TaskType task, uint64_t seed) {
  data::SyntheticSpec spec;
  spec.task = task;
  spec.num_samples = 140;
  spec.num_features = 5;
  spec.seed = seed;
  return data::MakeSynthetic(spec).ValueOrDie();
}

TEST(FlatModelTest, FlattenForestProducesValidatedArrays) {
  ml::RandomForest forest;
  const data::Dataset data = MakeData(data::TaskType::kClassification, 41);
  ASSERT_TRUE(forest.Fit(data.features, data.labels).ok());
  const FlatTreeModel model = FlattenForest(forest).ValueOrDie();

  EXPECT_EQ(model.kind, EnsembleKind::kForestVote);
  EXPECT_EQ(model.task, data::TaskType::kClassification);
  EXPECT_EQ(model.num_trees(), forest.num_trees());
  EXPECT_EQ(model.num_features, 5u);
  EXPECT_GE(model.num_classes, 2u);
  EXPECT_TRUE(model.Validate().ok());

  // The stored cuts are the fitted binner's thresholds, feature by
  // feature — the loaded model can encode raw frames on its own.
  const auto& binner = forest.binner();
  ASSERT_NE(binner, nullptr);
  for (uint32_t f = 0; f < model.num_features; ++f) {
    const uint64_t count = model.cut_offsets[f + 1] - model.cut_offsets[f];
    ASSERT_EQ(count, binner->num_bins(f) - 1);
    for (uint64_t c = 0; c < count; ++c) {
      EXPECT_EQ(model.cuts[model.cut_offsets[f] + c],
                binner->cut(f, static_cast<size_t>(c)));
    }
  }
}

TEST(FlatModelTest, FlattenGbdtCarriesBoosterMeta) {
  ml::GradientBoostedTrees::Options options;
  options.task = data::TaskType::kRegression;
  options.rounds = 7;
  options.learning_rate = 0.3;
  ml::GradientBoostedTrees booster(options);
  const data::Dataset data = MakeData(data::TaskType::kRegression, 42);
  ASSERT_TRUE(booster.Fit(data.features, data.labels).ok());
  const FlatTreeModel model = FlattenGbdt(booster).ValueOrDie();

  EXPECT_EQ(model.kind, EnsembleKind::kBoostedSum);
  EXPECT_EQ(model.num_trees(), 7u);
  EXPECT_EQ(model.base_score, booster.base_score());
  EXPECT_EQ(model.learning_rate, 0.3);
  EXPECT_TRUE(model.Validate().ok());
}

TEST(FlatModelTest, ChildOffsetsAreAbsoluteAndForward) {
  ml::RandomForest::Options options;
  options.task = data::TaskType::kRegression;
  ml::RandomForest forest(options);
  const data::Dataset data = MakeData(data::TaskType::kRegression, 43);
  ASSERT_TRUE(forest.Fit(data.features, data.labels).ok());
  const FlatTreeModel model = FlattenForest(forest).ValueOrDie();
  for (size_t t = 0; t < model.num_trees(); ++t) {
    const uint32_t begin = model.tree_offsets[t];
    const uint32_t end = model.tree_offsets[t + 1];
    ASSERT_LT(begin, end);
    for (uint32_t i = begin; i < end; ++i) {
      if (model.feature[i] < 0) continue;
      EXPECT_GT(model.left[i], static_cast<int32_t>(i));
      EXPECT_GT(model.right[i], static_cast<int32_t>(i));
      EXPECT_LT(static_cast<uint32_t>(model.left[i]), end);
      EXPECT_LT(static_cast<uint32_t>(model.right[i]), end);
    }
  }
}

TEST(FlatModelTest, UnfittedModelsDoNotFlatten) {
  EXPECT_FALSE(FlattenForest(ml::RandomForest()).ok());
  EXPECT_FALSE(FlattenGbdt(ml::GradientBoostedTrees()).ok());
}

TEST(FlatModelTest, NonSharedBinnerForestIsRejected) {
  ml::RandomForest::Options options;
  options.share_binner = false;  // Per-tree binners: no single cut table.
  ml::RandomForest forest(options);
  const data::Dataset data = MakeData(data::TaskType::kClassification, 44);
  ASSERT_TRUE(forest.Fit(data.features, data.labels).ok());
  EXPECT_FALSE(FlattenForest(forest).ok());
}

}  // namespace
}  // namespace eafe::serve
