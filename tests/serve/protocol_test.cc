#include "serve/server/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "serve/server/batch_queue.h"
#include "serve/wire.h"

namespace eafe::serve::server {
namespace {

// --------------------------------------------------------------------------
// Framing.

TEST(PeelFrameTest, PartialFramesYieldNothing) {
  const std::string frame = EncodePingRequest(7);
  // Every strict prefix — including a split length header — parks.
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    const auto peeled =
        PeelFrame(std::string_view(frame).substr(0, cut),
                  kDefaultMaxFrameBytes);
    ASSERT_TRUE(peeled.ok()) << "cut " << cut;
    EXPECT_FALSE(peeled->has_value()) << "cut " << cut;
  }
  const auto whole = PeelFrame(frame, kDefaultMaxFrameBytes);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(whole->has_value());
  EXPECT_EQ((*whole)->consumed, frame.size());
}

TEST(PeelFrameTest, ConsumesExactlyOneFrameFromAPipelinedBuffer) {
  const std::string buffer =
      EncodePingRequest(1) + EncodeMetricsRequest(2);
  const auto first = PeelFrame(buffer, kDefaultMaxFrameBytes);
  ASSERT_TRUE(first.ok() && first->has_value());
  const Message message =
      ParseMessage((*first)->payload).ValueOrDie();
  EXPECT_EQ(message.type, MessageType::kPingRequest);
  EXPECT_EQ(message.request_id, 1u);

  const auto second =
      PeelFrame(std::string_view(buffer).substr((*first)->consumed),
                kDefaultMaxFrameBytes);
  ASSERT_TRUE(second.ok() && second->has_value());
  EXPECT_EQ(ParseMessage((*second)->payload).ValueOrDie().type,
            MessageType::kMetricsRequest);
}

TEST(PeelFrameTest, OversizedDeclaredLengthIsAnError) {
  // 64 MiB declared against a 4 MiB cap: reject before buffering.
  ByteWriter writer;
  writer.PutU32(64u << 20);
  const auto peeled = PeelFrame(writer.bytes(), kDefaultMaxFrameBytes);
  EXPECT_FALSE(peeled.ok());
  EXPECT_EQ(peeled.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Message round trips.

TEST(ProtocolTest, PredictRequestRoundTripIsBitExact) {
  // Values chosen to catch any lossy re-encoding: signed zero, denormal,
  // huge, tiny, and an exact NaN bit pattern survive only if doubles
  // travel as raw IEEE-754 bits.
  const std::vector<double> values = {-0.0, 5e-324, 1.7976931348623157e308,
                                      -3.25, std::nan("0x5eed")};
  const std::string frame =
      EncodePredictRequest(42, "forest", true, 1, 5, values);
  const auto view = PeelFrame(frame, kDefaultMaxFrameBytes);
  ASSERT_TRUE(view.ok() && view->has_value());
  const Message message = ParseMessage((*view)->payload).ValueOrDie();
  EXPECT_EQ(message.type, MessageType::kPredictRequest);
  EXPECT_EQ(message.request_id, 42u);
  EXPECT_EQ(message.model_id, "forest");
  EXPECT_TRUE(message.proba);
  EXPECT_EQ(message.num_rows, 1u);
  EXPECT_EQ(message.num_cols, 5u);
  ASSERT_EQ(message.values.size(), values.size());
  EXPECT_EQ(std::memcmp(message.values.data(), values.data(),
                        values.size() * sizeof(double)),
            0);
}

TEST(ProtocolTest, ResponseRoundTrips) {
  const double outputs[3] = {0.25, -0.0, 1.0};
  Message predict =
      ParseMessage(
          PeelFrame(EncodePredictResponse(9, outputs, 3),
                    kDefaultMaxFrameBytes)
              .ValueOrDie()
              ->payload)
          .ValueOrDie();
  EXPECT_EQ(predict.type, MessageType::kPredictResponse);
  ASSERT_EQ(predict.values.size(), 3u);
  EXPECT_EQ(std::memcmp(predict.values.data(), outputs, sizeof(outputs)),
            0);

  Message error =
      ParseMessage(PeelFrame(EncodeErrorResponse(
                                 10, StatusCode::kNotFound, "no model"),
                             kDefaultMaxFrameBytes)
                       .ValueOrDie()
                       ->payload)
          .ValueOrDie();
  EXPECT_EQ(error.type, MessageType::kErrorResponse);
  EXPECT_EQ(static_cast<StatusCode>(error.code), StatusCode::kNotFound);
  EXPECT_EQ(error.text, "no model");

  Message shed =
      ParseMessage(PeelFrame(EncodeShedResponse(11, 20, "queue full"),
                             kDefaultMaxFrameBytes)
                       .ValueOrDie()
                       ->payload)
          .ValueOrDie();
  EXPECT_EQ(shed.type, MessageType::kShedResponse);
  EXPECT_EQ(shed.code, 20u);  // the retry-after hint rides the code slot

  Message list = ParseMessage(PeelFrame(EncodeModelListResponse(
                                            12, {"forest", "fpe"}),
                                        kDefaultMaxFrameBytes)
                                  .ValueOrDie()
                                  ->payload)
                     .ValueOrDie();
  EXPECT_EQ(list.type, MessageType::kModelListResponse);
  EXPECT_EQ(list.names, (std::vector<std::string>{"forest", "fpe"}));
}

TEST(ProtocolTest, MalformedPayloadsFailCleanly) {
  // Unknown type byte.
  EXPECT_FALSE(ParseMessage("\x7f\x00\x00\x00\x00\x00\x00\x00\x00")
                   .ok());
  // Empty payload.
  EXPECT_FALSE(ParseMessage("").ok());
  // Predict body whose declared row/col product disagrees with the
  // carried bytes (including the overflowing num_rows * num_cols case).
  {
    ByteWriter writer;
    writer.PutU8(static_cast<uint8_t>(MessageType::kPredictRequest));
    writer.PutU64(1);
    writer.PutString("m");
    writer.PutU8(0);
    writer.PutU32(0xffffffffu);
    writer.PutU32(0xffffffffu);
    writer.PutDouble(1.0);
    EXPECT_FALSE(ParseMessage(writer.bytes()).ok());
  }
  // Trailing garbage after a complete message body.
  {
    std::string frame = EncodePingRequest(3);
    const auto view = PeelFrame(frame, kDefaultMaxFrameBytes);
    std::string payload(view.ValueOrDie()->payload);
    payload += "x";
    EXPECT_FALSE(ParseMessage(payload).ok());
  }
  // Truncated predict body.
  {
    const std::string frame =
        EncodePredictRequest(4, "m", false, 2, 2, {1, 2, 3, 4});
    const auto view = PeelFrame(frame, kDefaultMaxFrameBytes);
    std::string payload(view.ValueOrDie()->payload);
    payload.resize(payload.size() - 5);
    EXPECT_FALSE(ParseMessage(payload).ok());
  }
}

// --------------------------------------------------------------------------
// Admission control + micro-batching.

QueuedPredict Request(uint64_t id, const std::string& model, bool proba,
                      uint32_t rows, uint32_t cols) {
  QueuedPredict request;
  request.conn_id = 1;
  request.request_id = id;
  request.model_id = model;
  request.proba = proba;
  request.num_rows = rows;
  request.num_cols = cols;
  request.values.assign(size_t{rows} * cols, 0.5);
  return request;
}

TEST(BatchQueueTest, RefusesBeyondDepthLimit) {
  BatchQueue queue(2);
  EXPECT_TRUE(queue.TryPush(Request(1, "m", false, 1, 3)));
  EXPECT_TRUE(queue.TryPush(Request(2, "m", false, 1, 3)));
  EXPECT_FALSE(queue.TryPush(Request(3, "m", false, 1, 3)));
  EXPECT_EQ(queue.depth(), 2u);

  std::vector<QueuedPredict> batch;
  ASSERT_TRUE(queue.PopBatch(100, &batch));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_TRUE(queue.TryPush(Request(4, "m", false, 1, 3)));
}

TEST(BatchQueueTest, CoalescesOnlyMatchingKeyInFifoOrder) {
  BatchQueue queue(16);
  ASSERT_TRUE(queue.TryPush(Request(1, "a", false, 1, 3)));
  ASSERT_TRUE(queue.TryPush(Request(2, "b", false, 1, 3)));  // other model
  ASSERT_TRUE(queue.TryPush(Request(3, "a", true, 1, 3)));   // other proba
  ASSERT_TRUE(queue.TryPush(Request(4, "a", false, 1, 4)));  // other width
  ASSERT_TRUE(queue.TryPush(Request(5, "a", false, 2, 3)));  // matches head

  std::vector<QueuedPredict> batch;
  ASSERT_TRUE(queue.PopBatch(100, &batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request_id, 1u);
  EXPECT_EQ(batch[1].request_id, 5u);

  // The skipped requests kept their arrival order.
  ASSERT_TRUE(queue.PopBatch(100, &batch));
  EXPECT_EQ(batch[0].request_id, 2u);
  ASSERT_TRUE(queue.PopBatch(100, &batch));
  EXPECT_EQ(batch[0].request_id, 3u);
  ASSERT_TRUE(queue.PopBatch(100, &batch));
  EXPECT_EQ(batch[0].request_id, 4u);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(BatchQueueTest, RespectsRowBudgetButAlwaysTakesTheHead) {
  BatchQueue queue(16);
  ASSERT_TRUE(queue.TryPush(Request(1, "m", false, 8, 2)));
  ASSERT_TRUE(queue.TryPush(Request(2, "m", false, 8, 2)));
  ASSERT_TRUE(queue.TryPush(Request(3, "m", false, 8, 2)));

  std::vector<QueuedPredict> batch;
  // Budget of 16 rows fits exactly two of the three.
  ASSERT_TRUE(queue.PopBatch(16, &batch));
  EXPECT_EQ(batch.size(), 2u);

  // A follower that would blow the budget waits for the next batch.
  ASSERT_TRUE(queue.TryPush(Request(4, "m", false, 64, 2)));
  ASSERT_TRUE(queue.PopBatch(16, &batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request_id, 3u);

  // An oversized head still ships (progress beats the budget) — alone.
  ASSERT_TRUE(queue.PopBatch(16, &batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request_id, 4u);
}

TEST(BatchQueueTest, CloseDrainsThenReportsShutdown) {
  BatchQueue queue(4);
  ASSERT_TRUE(queue.TryPush(Request(1, "m", false, 1, 2)));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(Request(2, "m", false, 1, 2)));

  std::vector<QueuedPredict> batch;
  ASSERT_TRUE(queue.PopBatch(100, &batch));  // queued work still drains
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_FALSE(queue.PopBatch(100, &batch));  // then shutdown
}

}  // namespace
}  // namespace eafe::serve::server
