#include "serve/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace eafe::serve {
namespace {

TEST(WireTest, ScalarRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI32(-12345);
  w.PutDouble(3.25);
  const std::string bytes = w.Take();

  ByteReader r(bytes);
  EXPECT_EQ(r.TakeU8().ValueOrDie(), 0xAB);
  EXPECT_EQ(r.TakeU32().ValueOrDie(), 0xDEADBEEFu);
  EXPECT_EQ(r.TakeU64().ValueOrDie(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.TakeI32().ValueOrDie(), -12345);
  EXPECT_EQ(r.TakeDouble().ValueOrDie(), 3.25);
  EXPECT_TRUE(r.done());
}

TEST(WireTest, LittleEndianByteOrder) {
  ByteWriter w;
  w.PutU32(0x01020304);
  const std::string bytes = w.Take();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
}

TEST(WireTest, DoublePreservesBitPatterns) {
  const std::vector<double> specials = {
      0.0, -0.0, std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max()};
  ByteWriter w;
  for (double v : specials) w.PutDouble(v);
  w.PutDouble(std::numeric_limits<double>::quiet_NaN());
  const std::string bytes = w.Take();
  ByteReader r(bytes);
  for (double v : specials) {
    const double got = r.TakeDouble().ValueOrDie();
    EXPECT_EQ(got, v);
    EXPECT_EQ(std::signbit(got), std::signbit(v));
  }
  EXPECT_TRUE(std::isnan(r.TakeDouble().ValueOrDie()));
}

TEST(WireTest, StringAndVecRoundTrip) {
  ByteWriter w;
  w.PutString("ccws");
  w.PutString("");
  w.PutDoubleVec({1.5, -2.5, 0.0});
  w.PutDoubleVec({});
  const std::string bytes = w.Take();
  ByteReader r(bytes);
  EXPECT_EQ(r.TakeString().ValueOrDie(), "ccws");
  EXPECT_EQ(r.TakeString().ValueOrDie(), "");
  EXPECT_EQ(r.TakeDoubleVec().ValueOrDie(),
            (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_TRUE(r.TakeDoubleVec().ValueOrDie().empty());
  EXPECT_TRUE(r.done());
}

TEST(WireTest, TruncatedReadsFailCleanly) {
  ByteWriter w;
  w.PutU64(7);
  std::string bytes = w.Take();
  bytes.resize(5);
  ByteReader r(bytes);
  const auto result = r.TakeU64();
  ASSERT_FALSE(result.ok());
  // A failed read must not consume anything.
  EXPECT_EQ(r.remaining(), 5u);
}

TEST(WireTest, EveryPrefixOfAVecFails) {
  ByteWriter w;
  w.PutDoubleVec({1.0, 2.0, 3.0});
  const std::string bytes = w.Take();
  for (size_t n = 0; n < bytes.size(); ++n) {
    ByteReader r(std::string_view(bytes).substr(0, n));
    EXPECT_FALSE(r.TakeDoubleVec().ok()) << "prefix length " << n;
  }
}

TEST(WireTest, TakeCountRejectsOversizedCounts) {
  ByteWriter w;
  w.PutU64(std::numeric_limits<uint64_t>::max());  // Hostile count.
  const std::string bytes = w.Take();
  ByteReader r(bytes);
  EXPECT_FALSE(r.TakeCount(8).ok());
}

TEST(WireTest, TakeCountAcceptsExactFit) {
  ByteWriter w;
  w.PutU64(2);
  w.PutDouble(1.0);
  w.PutDouble(2.0);
  const std::string bytes = w.Take();
  ByteReader r(bytes);
  EXPECT_EQ(r.TakeCount(sizeof(double)).ValueOrDie(), 2u);
}

TEST(WireTest, TakeSliceConfinesReads) {
  ByteWriter w;
  w.PutU32(11);
  w.PutU32(22);
  const std::string bytes = w.Take();
  ByteReader r(bytes);
  ByteReader slice = r.TakeSlice(4).ValueOrDie();
  EXPECT_EQ(slice.TakeU32().ValueOrDie(), 11u);
  EXPECT_FALSE(slice.TakeU32().ok());  // Confined to its 4 bytes.
  EXPECT_EQ(r.TakeU32().ValueOrDie(), 22u);
  EXPECT_FALSE(r.TakeSlice(1).ok());  // Nothing left.
}

TEST(WireTest, SkipAdvancesAndBoundsChecks) {
  ByteWriter w;
  w.PutU32(1);
  w.PutU32(2);
  const std::string bytes = w.Take();
  ByteReader r(bytes);
  ASSERT_TRUE(r.Skip(4).ok());
  EXPECT_EQ(r.TakeU32().ValueOrDie(), 2u);
  EXPECT_FALSE(r.Skip(1).ok());
}

}  // namespace
}  // namespace eafe::serve
