#include "serve/model_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/rng.h"
#include "data/synthetic.h"
#include "fpe/serialization.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/random_forest.h"
#include "serve/flat_predictor.h"
#include "serve/wire.h"

namespace eafe::serve {
namespace {

data::Dataset MakeData(data::TaskType task, uint64_t seed,
                       size_t rows = 160) {
  data::SyntheticSpec spec;
  spec.task = task;
  spec.num_samples = rows;
  spec.num_features = 6;
  spec.seed = seed;
  return data::MakeSynthetic(spec).ValueOrDie();
}

ml::RandomForest TrainForest(data::TaskType task, uint64_t seed) {
  ml::RandomForest::Options options;
  options.task = task;
  options.num_trees = 6;
  options.seed = seed;
  ml::RandomForest forest(options);
  const data::Dataset data = MakeData(task, seed);
  EXPECT_TRUE(forest.Fit(data.features, data.labels).ok());
  return forest;
}

ml::GradientBoostedTrees TrainBooster(data::TaskType task, uint64_t seed) {
  ml::GradientBoostedTrees::Options options;
  options.task = task;
  options.rounds = 8;
  options.seed = seed;
  ml::GradientBoostedTrees booster(options);
  const data::Dataset data = MakeData(task, seed);
  EXPECT_TRUE(booster.Fit(data.features, data.labels).ok());
  return booster;
}

std::vector<fpe::LabeledFeature> MakeFeatures(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<fpe::LabeledFeature> features;
  for (size_t i = 0; i < count; ++i) {
    fpe::LabeledFeature f;
    f.label = i % 2 == 0 ? 1 : 0;
    f.values.resize(80 + rng.UniformInt(uint64_t{80}));
    for (double& v : f.values) {
      v = f.label == 1 ? std::exp(rng.Normal(0.0, 1.2))
                       : rng.Uniform(0.0, 1.0);
    }
    features.push_back(std::move(f));
  }
  return features;
}

fpe::FpeModel TrainFpe(fpe::FpeModel::ClassifierKind classifier,
                       uint64_t seed) {
  fpe::FpeModel::Options options;
  options.classifier = classifier;
  options.compressor.dimension = 16;
  options.seed = seed;
  fpe::FpeModel model(options);
  EXPECT_TRUE(model.Train(MakeFeatures(80, seed)).ok());
  return model;
}

// Patches the little-endian u32 at `offset` in place.
void PatchU32(std::string* bytes, size_t offset, uint32_t v) {
  for (size_t i = 0; i < 4; ++i) {
    (*bytes)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

TEST(ModelStoreTest, ForestRoundTripPredictsIdentically) {
  for (const data::TaskType task :
       {data::TaskType::kClassification, data::TaskType::kRegression}) {
    const ml::RandomForest forest = TrainForest(task, 11);
    const std::string bytes = SerializeForest(forest).ValueOrDie();
    const LoadedModel loaded = DeserializeModel(bytes).ValueOrDie();
    EXPECT_EQ(loaded.kind, ModelKind::kRandomForest);
    ASSERT_TRUE(loaded.tree.has_value());
    FlatPredictor predictor =
        FlatPredictor::Create(*loaded.tree).ValueOrDie();
    const data::Dataset query = MakeData(task, 99);
    const std::vector<double> expected =
        forest.Predict(query.features).ValueOrDie();
    const std::vector<double> got =
        predictor.Predict(query.features).ValueOrDie();
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "row " << i;
    }
  }
}

TEST(ModelStoreTest, GbdtRoundTripPredictsIdentically) {
  for (const data::TaskType task :
       {data::TaskType::kClassification, data::TaskType::kRegression}) {
    const ml::GradientBoostedTrees booster = TrainBooster(task, 12);
    const std::string bytes = SerializeGbdt(booster).ValueOrDie();
    const LoadedModel loaded = DeserializeModel(bytes).ValueOrDie();
    EXPECT_EQ(loaded.kind, ModelKind::kGradientBoostedTrees);
    ASSERT_TRUE(loaded.tree.has_value());
    FlatPredictor predictor =
        FlatPredictor::Create(*loaded.tree).ValueOrDie();
    const data::Dataset query = MakeData(task, 98);
    const std::vector<double> expected =
        booster.Predict(query.features).ValueOrDie();
    const std::vector<double> got =
        predictor.Predict(query.features).ValueOrDie();
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "row " << i;
    }
  }
}

TEST(ModelStoreTest, FpeLogisticRoundTrip) {
  const fpe::FpeModel model =
      TrainFpe(fpe::FpeModel::ClassifierKind::kLogistic, 13);
  const std::string bytes = SerializeFpe(model).ValueOrDie();
  const LoadedModel loaded = DeserializeModel(bytes).ValueOrDie();
  EXPECT_EQ(loaded.kind, ModelKind::kFpe);
  ASSERT_TRUE(loaded.fpe.has_value());
  EXPECT_TRUE(loaded.fpe->trained());
  for (const auto& f : MakeFeatures(20, 14)) {
    EXPECT_EQ(model.PredictProbability(f.values).ValueOrDie(),
              loaded.fpe->PredictProbability(f.values).ValueOrDie());
  }
}

TEST(ModelStoreTest, FpeMlpRoundTrip) {
  const fpe::FpeModel model =
      TrainFpe(fpe::FpeModel::ClassifierKind::kMlp, 15);
  // The v1 text codec cannot hold this model (fpe/serialization.h) —
  // the container is the fix.
  EXPECT_EQ(fpe::SerializeFpeModel(model).status().code(),
            StatusCode::kNotImplemented);
  const std::string bytes = SerializeFpe(model).ValueOrDie();
  const LoadedModel loaded = DeserializeModel(bytes).ValueOrDie();
  ASSERT_TRUE(loaded.fpe.has_value());
  EXPECT_EQ(loaded.fpe->options().classifier,
            fpe::FpeModel::ClassifierKind::kMlp);
  for (const auto& f : MakeFeatures(20, 16)) {
    EXPECT_EQ(model.PredictProbability(f.values).ValueOrDie(),
              loaded.fpe->PredictProbability(f.values).ValueOrDie());
  }
}

TEST(ModelStoreTest, LegacyTextModelStillLoads) {
  const fpe::FpeModel model =
      TrainFpe(fpe::FpeModel::ClassifierKind::kLogistic, 17);
  const std::string text = fpe::SerializeFpeModel(model).ValueOrDie();
  const LoadedModel loaded = DeserializeModel(text).ValueOrDie();
  EXPECT_EQ(loaded.kind, ModelKind::kFpe);
  ASSERT_TRUE(loaded.fpe.has_value());
  for (const auto& f : MakeFeatures(10, 18)) {
    EXPECT_EQ(model.PredictProbability(f.values).ValueOrDie(),
              loaded.fpe->PredictProbability(f.values).ValueOrDie());
  }
}

TEST(ModelStoreTest, FileRoundTrip) {
  const ml::RandomForest forest =
      TrainForest(data::TaskType::kClassification, 19);
  const std::string path = ::testing::TempDir() + "/forest.eafe";
  ASSERT_TRUE(SaveModel(forest, path).ok());
  const LoadedModel loaded = LoadModel(path).ValueOrDie();
  EXPECT_EQ(loaded.kind, ModelKind::kRandomForest);
  std::remove(path.c_str());
  EXPECT_EQ(LoadModel(path).status().code(), StatusCode::kIoError);
}

// LoadModel decodes through a read-only memory mapping where the platform
// has one; deserializing a manual buffered read of the same file must
// produce a model with identical predictions — zero-copy is an IO
// optimization, never a semantic one.
TEST(ModelStoreTest, MappedLoadMatchesBufferedDeserialize) {
  const ml::RandomForest forest =
      TrainForest(data::TaskType::kRegression, 29);
  const std::string path = ::testing::TempDir() + "/forest_mmap.eafe";
  ASSERT_TRUE(SaveModel(forest, path).ok());
  const LoadedModel mapped = LoadModel(path).ValueOrDie();
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const LoadedModel buffered = DeserializeModel(buffer.str()).ValueOrDie();
  std::remove(path.c_str());
  EXPECT_EQ(mapped.kind, buffered.kind);
  ASSERT_TRUE(mapped.tree.has_value());
  ASSERT_TRUE(buffered.tree.has_value());
  FlatPredictor from_map = FlatPredictor::Create(*mapped.tree).ValueOrDie();
  FlatPredictor from_buf =
      FlatPredictor::Create(*buffered.tree).ValueOrDie();
  const data::Dataset query = MakeData(data::TaskType::kRegression, 30);
  const std::vector<double> a =
      from_map.Predict(query.features).ValueOrDie();
  const std::vector<double> b =
      from_buf.Predict(query.features).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "row " << i;
  }
}

// Legacy v1 text models go through LoadModel's mapped path too (the
// string_view is copied for the line-oriented parser).
TEST(ModelStoreTest, LegacyTextModelLoadsFromFile) {
  const fpe::FpeModel model =
      TrainFpe(fpe::FpeModel::ClassifierKind::kLogistic, 31);
  const std::string text = fpe::SerializeFpeModel(model).ValueOrDie();
  const std::string path = ::testing::TempDir() + "/legacy.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << text;
  }
  const LoadedModel loaded = LoadModel(path).ValueOrDie();
  std::remove(path.c_str());
  EXPECT_EQ(loaded.kind, ModelKind::kFpe);
  ASSERT_TRUE(loaded.fpe.has_value());
  for (const auto& f : MakeFeatures(10, 32)) {
    EXPECT_EQ(model.PredictProbability(f.values).ValueOrDie(),
              loaded.fpe->PredictProbability(f.values).ValueOrDie());
  }
}

// Zero-length files cannot be mapped (mmap rejects them); the buffered
// fallback reads "" and the magic check reports the real problem.
TEST(ModelStoreTest, EmptyFileFailsCleanly) {
  const std::string path = ::testing::TempDir() + "/empty.eafe";
  { std::ofstream out(path, std::ios::binary); }
  EXPECT_EQ(LoadModel(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelStoreTest, UntrainedModelsRejected) {
  EXPECT_FALSE(SerializeForest(ml::RandomForest()).ok());
  EXPECT_FALSE(SerializeGbdt(ml::GradientBoostedTrees()).ok());
  EXPECT_FALSE(SerializeFpe(fpe::FpeModel()).ok());
}

TEST(ModelStoreTest, ExactTreeFitsAreNotExportable) {
  ml::RandomForest::Options options;
  options.split_strategy = ml::SplitStrategy::kExact;
  ml::RandomForest forest(options);
  const data::Dataset data = MakeData(data::TaskType::kClassification, 20);
  ASSERT_TRUE(forest.Fit(data.features, data.labels).ok());
  EXPECT_EQ(SerializeForest(forest).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ModelStoreTest, BadMagicRejected) {
  EXPECT_FALSE(DeserializeModel("").ok());
  EXPECT_FALSE(DeserializeModel("garbage").ok());
  std::string bytes =
      SerializeForest(TrainForest(data::TaskType::kClassification, 21))
          .ValueOrDie();
  bytes[0] = 'X';
  const auto result = DeserializeModel(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("bad magic"), std::string::npos);
}

TEST(ModelStoreTest, FutureFormatVersionRejected) {
  std::string bytes =
      SerializeForest(TrainForest(data::TaskType::kClassification, 22))
          .ValueOrDie();
  PatchU32(&bytes, kMagicSize, kFormatVersion + 1);
  const auto result = DeserializeModel(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("newer"), std::string::npos);
}

TEST(ModelStoreTest, UnknownModelKindRejected) {
  std::string bytes =
      SerializeForest(TrainForest(data::TaskType::kClassification, 23))
          .ValueOrDie();
  PatchU32(&bytes, kMagicSize + 4, 77);
  EXPECT_FALSE(DeserializeModel(bytes).ok());
}

TEST(ModelStoreTest, OversizedSectionLengthRejected) {
  std::string bytes =
      SerializeForest(TrainForest(data::TaskType::kClassification, 24))
          .ValueOrDie();
  // First section starts right after magic + version + kind; its u64
  // length sits 4 bytes (the section id) further in. Declare far more
  // payload than the container holds.
  const size_t length_at = kMagicSize + 4 + 4 + 4;
  for (size_t i = 0; i < 8; ++i) {
    bytes[length_at + i] = static_cast<char>(0xFF);
  }
  const auto result = DeserializeModel(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("remain"), std::string::npos);
}

TEST(ModelStoreTest, EveryTruncationFailsCleanly) {
  const std::string bytes =
      SerializeGbdt(TrainBooster(data::TaskType::kClassification, 25))
          .ValueOrDie();
  // Every strict prefix must fail with a clean Status: either a
  // truncated read, a short section, or a missing required section.
  for (size_t n = 0; n < bytes.size(); n += 3) {
    EXPECT_FALSE(DeserializeModel(bytes.substr(0, n)).ok())
        << "prefix length " << n << " of " << bytes.size();
  }
}

TEST(ModelStoreTest, UnknownTrailingSectionIsSkipped) {
  const ml::RandomForest forest =
      TrainForest(data::TaskType::kClassification, 26);
  std::string bytes = SerializeForest(forest).ValueOrDie();
  // A future writer appends an optional section this loader has never
  // heard of; forward compatibility says we skip it.
  ByteWriter extra;
  extra.PutU32(9999);
  extra.PutU64(12);
  extra.PutBytes("hello future");
  bytes += extra.Take();
  const LoadedModel loaded = DeserializeModel(bytes).ValueOrDie();
  ASSERT_TRUE(loaded.tree.has_value());
  FlatPredictor predictor = FlatPredictor::Create(*loaded.tree).ValueOrDie();
  const data::Dataset query = MakeData(data::TaskType::kClassification, 97);
  EXPECT_EQ(predictor.Predict(query.features).ValueOrDie(),
            forest.Predict(query.features).ValueOrDie());
}

TEST(ModelStoreTest, CorruptedNodeArraysRejectedByValidation) {
  std::string bytes =
      SerializeForest(TrainForest(data::TaskType::kClassification, 27))
          .ValueOrDie();
  // Flip every byte position one at a time would be slow; instead smash a
  // wide swath of the node section and require a clean failure or a
  // still-valid model (never UB). The validator rejects inconsistent
  // arrays, child offsets, and split bins.
  for (size_t at = kMagicSize + 8; at + 64 < bytes.size();
       at += bytes.size() / 13) {
    std::string corrupted = bytes;
    for (size_t i = 0; i < 64; ++i) {
      corrupted[at + i] = static_cast<char>(0xA5);
    }
    const auto result = DeserializeModel(corrupted);
    if (!result.ok()) continue;  // Clean rejection is the common case.
    // If the bytes happened to still decode, the model must validate.
    if (result->tree.has_value()) {
      EXPECT_TRUE(result->tree->Validate().ok());
    }
  }
}

}  // namespace
}  // namespace eafe::serve
