#include "serve/flat_predictor.h"

#include <gtest/gtest.h>

#include <vector>

#include "data/synthetic.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/random_forest.h"
#include "serve/model_store.h"

namespace eafe::serve {
namespace {

data::Dataset MakeData(data::TaskType task, uint64_t seed,
                       size_t rows = 150) {
  data::SyntheticSpec spec;
  spec.task = task;
  spec.num_samples = rows;
  spec.num_features = 7;
  spec.seed = seed;
  return data::MakeSynthetic(spec).ValueOrDie();
}

void ExpectBitIdentical(const std::vector<double>& got,
                        const std::vector<double>& expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "row " << i;
  }
}

// Property: for any seed and task, the flat engine's Predict and
// PredictProba over the serialized round trip match the in-memory coded
// paths bit for bit on fresh query frames.
TEST(FlatPredictorTest, ForestBitIdenticalAcrossSeeds) {
  for (const data::TaskType task :
       {data::TaskType::kClassification, data::TaskType::kRegression}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      ml::RandomForest::Options options;
      options.task = task;
      options.num_trees = 5;
      options.seed = seed;
      ml::RandomForest forest(options);
      const data::Dataset data = MakeData(task, seed);
      ASSERT_TRUE(forest.Fit(data.features, data.labels).ok());

      const LoadedModel loaded =
          DeserializeModel(SerializeForest(forest).ValueOrDie())
              .ValueOrDie();
      FlatPredictor predictor =
          FlatPredictor::Create(*loaded.tree).ValueOrDie();
      const data::Dataset query = MakeData(task, seed + 100);
      ExpectBitIdentical(predictor.Predict(query.features).ValueOrDie(),
                         forest.Predict(query.features).ValueOrDie());
      ExpectBitIdentical(
          predictor.PredictProba(query.features).ValueOrDie(),
          forest.PredictProba(query.features).ValueOrDie());
    }
  }
}

TEST(FlatPredictorTest, GbdtBitIdenticalAcrossSeeds) {
  for (const data::TaskType task :
       {data::TaskType::kClassification, data::TaskType::kRegression}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      ml::GradientBoostedTrees::Options options;
      options.task = task;
      options.rounds = 6;
      options.seed = seed;
      ml::GradientBoostedTrees booster(options);
      const data::Dataset data = MakeData(task, seed);
      ASSERT_TRUE(booster.Fit(data.features, data.labels).ok());

      const LoadedModel loaded =
          DeserializeModel(SerializeGbdt(booster).ValueOrDie())
              .ValueOrDie();
      FlatPredictor predictor =
          FlatPredictor::Create(*loaded.tree).ValueOrDie();
      const data::Dataset query = MakeData(task, seed + 200);
      ExpectBitIdentical(predictor.Predict(query.features).ValueOrDie(),
                         booster.Predict(query.features).ValueOrDie());
      ExpectBitIdentical(
          predictor.PredictProba(query.features).ValueOrDie(),
          booster.PredictProba(query.features).ValueOrDie());
    }
  }
}

TEST(FlatPredictorTest, ScratchBuffersSurviveBatchSizeChanges) {
  ml::RandomForest forest;
  const data::Dataset data =
      MakeData(data::TaskType::kClassification, 31);
  ASSERT_TRUE(forest.Fit(data.features, data.labels).ok());
  FlatPredictor predictor =
      FlatPredictor::Create(
          DeserializeModel(SerializeForest(forest).ValueOrDie())
              .ValueOrDie()
              .tree.value())
          .ValueOrDie();
  // Shrinking and regrowing the batch reuses the scratch buffers; every
  // batch must still match the reference prediction.
  for (const size_t rows : {200u, 20u, 10u, 64u}) {
    const data::Dataset query =
        MakeData(data::TaskType::kClassification, 32, rows);
    ExpectBitIdentical(predictor.Predict(query.features).ValueOrDie(),
                       forest.Predict(query.features).ValueOrDie());
  }
}

TEST(FlatPredictorTest, FeatureCountMismatchRejected) {
  ml::RandomForest forest;
  const data::Dataset data =
      MakeData(data::TaskType::kClassification, 33);
  ASSERT_TRUE(forest.Fit(data.features, data.labels).ok());
  FlatPredictor predictor =
      FlatPredictor::Create(
          DeserializeModel(SerializeForest(forest).ValueOrDie())
              .ValueOrDie()
              .tree.value())
          .ValueOrDie();
  data::SyntheticSpec narrow;
  narrow.num_features = 3;
  narrow.seed = 34;
  const data::Dataset query = data::MakeSynthetic(narrow).ValueOrDie();
  EXPECT_FALSE(predictor.Predict(query.features).ok());
}

TEST(FlatPredictorTest, StructurallyBrokenModelsRejected) {
  ml::RandomForest forest;
  const data::Dataset data =
      MakeData(data::TaskType::kClassification, 35);
  ASSERT_TRUE(forest.Fit(data.features, data.labels).ok());
  const FlatTreeModel good =
      DeserializeModel(SerializeForest(forest).ValueOrDie())
          .ValueOrDie()
          .tree.value();

  size_t internal = good.num_nodes();
  for (size_t i = 0; i < good.num_nodes(); ++i) {
    if (good.feature[i] >= 0) {
      internal = i;
      break;
    }
  }
  ASSERT_LT(internal, good.num_nodes());

  {
    FlatTreeModel broken = good;
    // Self-referential child: traversal would spin forever.
    broken.left[internal] = static_cast<int32_t>(internal);
    EXPECT_FALSE(FlatPredictor::Create(std::move(broken)).ok());
  }
  {
    FlatTreeModel broken = good;
    broken.feature.pop_back();  // Array lengths disagree.
    EXPECT_FALSE(FlatPredictor::Create(std::move(broken)).ok());
  }
  {
    FlatTreeModel broken = good;
    broken.tree_offsets.back() += 1;  // Offsets past the arrays.
    EXPECT_FALSE(FlatPredictor::Create(std::move(broken)).ok());
  }
  {
    FlatTreeModel broken = good;
    broken.split_bin[internal] = 255;  // Past the last bin boundary.
    EXPECT_FALSE(FlatPredictor::Create(std::move(broken)).ok());
  }
}

}  // namespace
}  // namespace eafe::serve
