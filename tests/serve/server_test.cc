#include "serve/server/server.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "data/synthetic.h"
#include "fpe/fpe_model.h"
#include "ml/random_forest.h"
#include "runtime/metrics.h"
#include "serve/flat_predictor.h"
#include "serve/model_store.h"
#include "serve/server/client.h"
#include "serve/wire.h"

namespace eafe::serve::server {
namespace {

constexpr uint32_t kCols = 7;

data::Dataset MakeData(uint64_t seed, size_t rows = 120) {
  data::SyntheticSpec spec;
  spec.task = data::TaskType::kClassification;
  spec.num_samples = rows;
  spec.num_features = kCols;
  spec.seed = seed;
  return data::MakeSynthetic(spec).ValueOrDie();
}

LoadedModel MakeForestModel(uint64_t seed) {
  ml::RandomForest::Options options;
  options.task = data::TaskType::kClassification;
  options.num_trees = 5;
  options.seed = seed;
  ml::RandomForest forest(options);
  const data::Dataset data = MakeData(seed);
  EXPECT_TRUE(forest.Fit(data.features, data.labels).ok());
  return DeserializeModel(SerializeForest(forest).ValueOrDie())
      .ValueOrDie();
}

/// Row-major block of query rows plus a local FlatPredictor to compute
/// the reference bits from the same container bytes the server loads.
struct Fixture {
  std::unique_ptr<EafeServer> server;
  std::unique_ptr<FlatPredictor> reference;
};

Fixture MakeServer(const EafeServer::Options& options = {}) {
  Fixture fixture;
  fixture.server = EafeServer::Create(options).ValueOrDie();
  LoadedModel model = MakeForestModel(31);
  fixture.reference = std::make_unique<FlatPredictor>(
      FlatPredictor::Create(*model.tree).ValueOrDie());
  EXPECT_TRUE(
      fixture.server->AddModel("forest", std::move(model)).ok());
  EXPECT_TRUE(fixture.server->Start().ok());
  return fixture;
}

std::vector<double> RowMajor(const data::DataFrame& frame) {
  std::vector<double> values(frame.num_rows() * frame.num_columns());
  for (size_t c = 0; c < frame.num_columns(); ++c) {
    const std::vector<double>& column = frame.column(c).values();
    for (size_t r = 0; r < frame.num_rows(); ++r) {
      values[r * frame.num_columns() + c] = column[r];
    }
  }
  return values;
}

void ExpectSameBits(const std::vector<double>& got,
                    const std::vector<double>& expected) {
  ASSERT_EQ(got.size(), expected.size());
  ASSERT_EQ(std::memcmp(got.data(), expected.data(),
                        got.size() * sizeof(double)),
            0);
}

TEST(EafeServerTest, StartStopIsCleanAndIdempotent) {
  Fixture fixture = MakeServer();
  EXPECT_GT(fixture.server->port(), 0);
  EXPECT_EQ(fixture.server->model_ids(),
            (std::vector<std::string>{"forest"}));
  fixture.server->Stop();
  fixture.server->Stop();  // idempotent
}

// The acceptance bar: responses are bit-identical to a direct
// FlatPredictor run on the same container, for whole batches and for
// pipelined single rows the server coalesces itself.
TEST(EafeServerTest, BatchPredictMatchesDirectPredictorBitForBit) {
  Fixture fixture = MakeServer();
  const data::Dataset query = MakeData(77, 40);
  const std::vector<double> values = RowMajor(query.features);

  BlockingClient client =
      BlockingClient::Connect("127.0.0.1", fixture.server->port())
          .ValueOrDie();
  for (const bool proba : {false, true}) {
    const Message reply =
        client
            .Predict(proba ? 2 : 1, "forest", proba,
                     static_cast<uint32_t>(query.features.num_rows()),
                     kCols, values)
            .ValueOrDie();
    ASSERT_EQ(reply.type, MessageType::kPredictResponse);
    ExpectSameBits(reply.values,
                   (proba ? fixture.reference->PredictProba(query.features)
                          : fixture.reference->Predict(query.features))
                       .ValueOrDie());
  }
}

TEST(EafeServerTest, PipelinedSingleRowsCoalesceWithoutChangingBits) {
  // A short executor delay makes coalescing deterministic: while batch
  // one sleeps, the rest of the pipelined burst accumulates and must be
  // drained as (at most a few) larger batches.
  EafeServer::Options options;
  options.debug_batch_sleep_ms = 5;
  Fixture fixture = MakeServer(options);
  const data::Dataset query = MakeData(91, 24);
  const std::vector<double> values = RowMajor(query.features);
  const std::vector<double> expected =
      fixture.reference->Predict(query.features).ValueOrDie();

  BlockingClient client =
      BlockingClient::Connect("127.0.0.1", fixture.server->port())
          .ValueOrDie();
  const size_t rows = query.features.num_rows();
  for (size_t r = 0; r < rows; ++r) {
    const std::vector<double> row(values.begin() + r * kCols,
                                  values.begin() + (r + 1) * kCols);
    ASSERT_TRUE(client.SendPredict(r, "forest", false, 1, kCols, row).ok());
  }
  std::vector<double> got(rows, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    const Message reply = client.ReadReply().ValueOrDie();
    ASSERT_EQ(reply.type, MessageType::kPredictResponse);
    ASSERT_LT(reply.request_id, rows);
    ASSERT_EQ(reply.values.size(), 1u);
    got[reply.request_id] = reply.values[0];
  }
  ExpectSameBits(got, expected);
  // The pipelined burst should have been answered in strictly fewer
  // batches than requests — the micro-batcher did coalesce.
  EXPECT_LT(fixture.server->stats().batches,
            fixture.server->stats().responses);
}

TEST(EafeServerTest, FpeModelScoresCandidateRows) {
  fpe::FpeModel reference;
  {
    Rng rng(5);
    std::vector<fpe::LabeledFeature> train;
    for (size_t i = 0; i < 60; ++i) {
      fpe::LabeledFeature f;
      f.label = i % 2 == 0 ? 1 : 0;
      f.values.resize(64);
      for (double& v : f.values) {
        v = f.label == 1 ? rng.Uniform(0.5, 3.0) : rng.Uniform(0.0, 1.0);
      }
      train.push_back(std::move(f));
    }
    ASSERT_TRUE(reference.Train(train).ok());
  }
  EafeServer::Options options;
  std::unique_ptr<EafeServer> server =
      EafeServer::Create(options).ValueOrDie();
  ASSERT_TRUE(
      server
          ->AddModel("fpe", DeserializeModel(SerializeFpe(reference)
                                                 .ValueOrDie())
                                .ValueOrDie())
          .ok());
  ASSERT_TRUE(server->Start().ok());

  // Two candidate feature columns of width 32 in one request.
  Rng rng(9);
  std::vector<double> values(2 * 32);
  for (double& v : values) v = rng.Uniform(0.0, 2.0);
  BlockingClient client =
      BlockingClient::Connect("127.0.0.1", server->port()).ValueOrDie();
  const Message reply =
      client.Predict(1, "fpe", true, 2, 32, values).ValueOrDie();
  ASSERT_EQ(reply.type, MessageType::kPredictResponse);
  ASSERT_EQ(reply.values.size(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    const std::vector<double> row(values.begin() + r * 32,
                                  values.begin() + (r + 1) * 32);
    EXPECT_EQ(reply.values[r],
              reference.PredictProbability(row).ValueOrDie());
  }
}

TEST(EafeServerTest, UnknownModelAndBadWidthAreTypedErrors) {
  Fixture fixture = MakeServer();
  BlockingClient client =
      BlockingClient::Connect("127.0.0.1", fixture.server->port())
          .ValueOrDie();
  const Message unknown =
      client.Predict(1, "nope", false, 1, kCols,
                     std::vector<double>(kCols, 0.0))
          .ValueOrDie();
  ASSERT_EQ(unknown.type, MessageType::kErrorResponse);
  EXPECT_EQ(static_cast<StatusCode>(unknown.code), StatusCode::kNotFound);

  const Message narrow =
      client.Predict(2, "forest", false, 1, kCols - 1,
                     std::vector<double>(kCols - 1, 0.0))
          .ValueOrDie();
  ASSERT_EQ(narrow.type, MessageType::kErrorResponse);
  EXPECT_EQ(static_cast<StatusCode>(narrow.code),
            StatusCode::kInvalidArgument);

  // The connection survived both errors.
  EXPECT_EQ(client.Ping(3).ValueOrDie().type, MessageType::kPongResponse);
}

TEST(EafeServerTest, GarbageFrameGetsErrorThenClose) {
  Fixture fixture = MakeServer();
  BlockingClient client =
      BlockingClient::Connect("127.0.0.1", fixture.server->port())
          .ValueOrDie();
  ASSERT_TRUE(
      client.SendBytes(std::string("\x06\x00\x00\x00rubbsh", 10)).ok());
  const Message reply = client.ReadReply().ValueOrDie();
  EXPECT_EQ(reply.type, MessageType::kErrorResponse);
  // The stream cannot be resynced, so the server hangs up afterwards.
  EXPECT_FALSE(client.ReadReply().ok());
  EXPECT_GE(fixture.server->stats().protocol_errors, 1u);
}

TEST(EafeServerTest, OversizedFrameIsRejectedNotBuffered) {
  EafeServer::Options options;
  options.max_frame_bytes = 1024;
  Fixture fixture = MakeServer(options);
  BlockingClient client =
      BlockingClient::Connect("127.0.0.1", fixture.server->port())
          .ValueOrDie();
  // Header alone declares 1 MiB — far past the 1 KiB cap.
  ByteWriter header;
  header.PutU32(1u << 20);
  ASSERT_TRUE(client.SendBytes(header.bytes()).ok());
  const Message reply = client.ReadReply().ValueOrDie();
  EXPECT_EQ(reply.type, MessageType::kErrorResponse);
  EXPECT_FALSE(client.ReadReply().ok());
}

TEST(EafeServerTest, TruncatedFrameThenDisconnectLeavesServerHealthy) {
  Fixture fixture = MakeServer();
  {
    BlockingClient client =
        BlockingClient::Connect("127.0.0.1", fixture.server->port())
            .ValueOrDie();
    const std::string frame = EncodePredictRequest(
        1, "forest", false, 1, kCols, std::vector<double>(kCols, 1.0));
    ASSERT_TRUE(
        client.SendBytes(std::string_view(frame).substr(0, 9)).ok());
  }  // destructor disconnects mid-frame
  BlockingClient after =
      BlockingClient::Connect("127.0.0.1", fixture.server->port())
          .ValueOrDie();
  EXPECT_EQ(after.Ping(2).ValueOrDie().type, MessageType::kPongResponse);
}

// Slow-loris: a connection parked on a half-written frame must not
// block anyone else — progress is per-connection, the reactor never
// waits on a slow peer.
TEST(EafeServerTest, HalfWrittenFrameDoesNotBlockOtherConnections) {
  Fixture fixture = MakeServer();
  const std::vector<double> all = RowMajor(MakeData(55, 10).features);
  const std::vector<double> values(all.begin(), all.begin() + kCols);
  const std::string frame =
      EncodePredictRequest(7, "forest", false, 1, kCols, values);

  BlockingClient slow =
      BlockingClient::Connect("127.0.0.1", fixture.server->port())
          .ValueOrDie();
  ASSERT_TRUE(
      slow.SendBytes(std::string_view(frame).substr(0, frame.size() / 2))
          .ok());

  BlockingClient fast =
      BlockingClient::Connect("127.0.0.1", fixture.server->port())
          .ValueOrDie();
  const Message unblocked =
      fast.Predict(1, "forest", false, 1, kCols, values).ValueOrDie();
  EXPECT_EQ(unblocked.type, MessageType::kPredictResponse);

  // The slow half completes and is answered with the same bits.
  ASSERT_TRUE(
      slow.SendBytes(std::string_view(frame).substr(frame.size() / 2))
          .ok());
  const Message late = slow.ReadReply().ValueOrDie();
  ASSERT_EQ(late.type, MessageType::kPredictResponse);
  ExpectSameBits(late.values, unblocked.values);
}

// A client that vanishes while its request sits in the executor must
// not crash the server or poison another connection's stream.
TEST(EafeServerTest, DisconnectMidBatchIsDroppedSafely) {
  EafeServer::Options options;
  options.debug_batch_sleep_ms = 30;
  Fixture fixture = MakeServer(options);
  const std::vector<double> values(kCols, 0.25);
  {
    BlockingClient doomed =
        BlockingClient::Connect("127.0.0.1", fixture.server->port())
            .ValueOrDie();
    ASSERT_TRUE(
        doomed.SendPredict(1, "forest", false, 1, kCols, values).ok());
  }  // gone before the executor finishes its slowed batch
  BlockingClient survivor =
      BlockingClient::Connect("127.0.0.1", fixture.server->port())
          .ValueOrDie();
  const Message reply =
      survivor.Predict(2, "forest", false, 1, kCols, values).ValueOrDie();
  EXPECT_EQ(reply.type, MessageType::kPredictResponse);
  fixture.server->Stop();
  EXPECT_GE(fixture.server->stats().requests, 2u);
}

// Overload degrades to fast typed rejections: with a one-deep queue and
// a slowed executor, a pipelined burst must see shed responses, every
// request must still be answered, and nothing may stall.
TEST(EafeServerTest, OverloadShedsInsteadOfStalling) {
  EafeServer::Options options;
  options.queue_limit = 1;
  options.debug_batch_sleep_ms = 40;
  Fixture fixture = MakeServer(options);
  const std::vector<double> values(kCols, 0.5);

  BlockingClient client =
      BlockingClient::Connect("127.0.0.1", fixture.server->port())
          .ValueOrDie();
  constexpr size_t kBurst = 24;
  for (size_t i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(
        client.SendPredict(i, "forest", false, 1, kCols, values).ok());
  }
  size_t ok = 0, shed = 0;
  for (size_t i = 0; i < kBurst; ++i) {
    const Message reply = client.ReadReply().ValueOrDie();
    if (reply.type == MessageType::kPredictResponse) {
      ++ok;
    } else {
      ASSERT_EQ(reply.type, MessageType::kShedResponse);
      EXPECT_GT(reply.code, 0u);  // retry-after hint
      ++shed;
    }
  }
  EXPECT_GE(ok, 1u);
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(fixture.server->stats().shed, shed);
}

TEST(EafeServerTest, MetricsPingAndModelListRoundTrip) {
  runtime::TextMetricGateway gateway;
  runtime::SetGlobalMetrics(&gateway);
  {
    Fixture fixture = MakeServer();
    BlockingClient client =
        BlockingClient::Connect("127.0.0.1", fixture.server->port())
            .ValueOrDie();
    ASSERT_TRUE(client
                    .Predict(1, "forest", false, 1, kCols,
                             std::vector<double>(kCols, 0.0))
                    .ok());
    EXPECT_EQ(client.Ping(2).ValueOrDie().type,
              MessageType::kPongResponse);
    EXPECT_EQ(client.ListModels(3).ValueOrDie(),
              (std::vector<std::string>{"forest"}));
    const std::string exposition = client.Metrics(4).ValueOrDie();
    EXPECT_NE(exposition.find("eafe_server_requests_total"),
              std::string::npos);
    EXPECT_NE(exposition.find("eafe_server_batch_rows"),
              std::string::npos);
    fixture.server->Stop();
  }
  runtime::SetGlobalMetrics(nullptr);
}

TEST(EafeServerTest, ModelsMustBeRegisteredBeforeStart) {
  EafeServer::Options options;
  std::unique_ptr<EafeServer> server =
      EafeServer::Create(options).ValueOrDie();
  ASSERT_TRUE(server->AddModel("forest", MakeForestModel(3)).ok());
  // Duplicate ids are refused.
  EXPECT_FALSE(server->AddModel("forest", MakeForestModel(4)).ok());
  ASSERT_TRUE(server->Start().ok());
  // The registry is immutable while running.
  EXPECT_FALSE(server->AddModel("late", MakeForestModel(5)).ok());
}

}  // namespace
}  // namespace eafe::serve::server
