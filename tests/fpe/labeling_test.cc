#include "fpe/labeling.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/synthetic.h"

namespace eafe::fpe {
namespace {

/// A dataset where one feature is the label signal and the rest is noise:
/// leave-one-out labeling must mark the signal feature as effective.
data::Dataset MakeSignalPlusNoise(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> signal(n), noise1(n), noise2(n), labels(n);
  for (size_t i = 0; i < n; ++i) {
    signal[i] = rng.Normal();
    noise1[i] = rng.Normal();
    noise2[i] = rng.Normal();
    labels[i] = signal[i] > 0.0 ? 1.0 : 0.0;
  }
  data::Dataset dataset;
  dataset.name = "signal_noise";
  dataset.task = data::TaskType::kClassification;
  EXPECT_TRUE(
      dataset.features.AddColumn(data::Column("signal", signal)).ok());
  EXPECT_TRUE(
      dataset.features.AddColumn(data::Column("noise1", noise1)).ok());
  EXPECT_TRUE(
      dataset.features.AddColumn(data::Column("noise2", noise2)).ok());
  dataset.labels = labels;
  return dataset;
}

ml::EvaluatorOptions QuickEvaluator() {
  ml::EvaluatorOptions options;
  options.cv_folds = 3;
  options.rf_trees = 6;
  options.rf_max_depth = 5;
  return options;
}

TEST(LabelingTest, SignalFeatureLabeledEffective) {
  const data::Dataset dataset = MakeSignalPlusNoise(250, 1);
  ml::TaskEvaluator evaluator(QuickEvaluator());
  const auto labeled =
      LabelFeatures(dataset, evaluator, 0.01).ValueOrDie();
  ASSERT_EQ(labeled.size(), 3u);
  EXPECT_EQ(labeled[0].feature_name, "signal");
  EXPECT_EQ(labeled[0].label, 1);
  EXPECT_GT(labeled[0].score_gain, 0.05);
  // Noise features should not be strongly effective.
  EXPECT_LT(labeled[1].score_gain, labeled[0].score_gain);
  EXPECT_LT(labeled[2].score_gain, labeled[0].score_gain);
}

TEST(LabelingTest, PopulatesMetadata) {
  const data::Dataset dataset = MakeSignalPlusNoise(150, 2);
  ml::TaskEvaluator evaluator(QuickEvaluator());
  const auto labeled =
      LabelFeatures(dataset, evaluator, 0.01).ValueOrDie();
  for (const LabeledFeature& f : labeled) {
    EXPECT_EQ(f.dataset_name, "signal_noise");
    EXPECT_EQ(f.task, data::TaskType::kClassification);
    EXPECT_EQ(f.values.size(), dataset.num_rows());
  }
}

TEST(LabelingTest, SingleFeatureDatasetYieldsNothing) {
  data::Dataset dataset;
  dataset.task = data::TaskType::kRegression;
  ASSERT_TRUE(dataset.features.AddColumn(
      data::Column("only", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10})).ok());
  dataset.labels = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  ml::TaskEvaluator evaluator(QuickEvaluator());
  const auto labeled =
      LabelFeatures(dataset, evaluator, 0.01).ValueOrDie();
  EXPECT_TRUE(labeled.empty());
}

TEST(LabelingTest, CollectionConcatenates) {
  const std::vector<data::Dataset> datasets = {
      MakeSignalPlusNoise(120, 3), MakeSignalPlusNoise(140, 4)};
  ml::TaskEvaluator evaluator(QuickEvaluator());
  const auto labeled =
      LabelFeatureCollection(datasets, evaluator, 0.01).ValueOrDie();
  EXPECT_EQ(labeled.size(), 6u);
}

TEST(LabelingTest, RelabelWithThreshold) {
  std::vector<LabeledFeature> features(3);
  features[0].score_gain = 0.05;
  features[1].score_gain = 0.005;
  features[2].score_gain = -0.02;
  RelabelWithThreshold(&features, 0.01);
  EXPECT_EQ(features[0].label, 1);
  EXPECT_EQ(features[1].label, 0);
  EXPECT_EQ(features[2].label, 0);
  RelabelWithThreshold(&features, 0.001);
  EXPECT_EQ(features[1].label, 1);
  // A lower threshold can only add positives (monotonicity).
}

TEST(LabelingTest, ThresholdMonotonicity) {
  const data::Dataset dataset = MakeSignalPlusNoise(150, 5);
  ml::TaskEvaluator evaluator(QuickEvaluator());
  auto labeled = LabelFeatures(dataset, evaluator, 0.0).ValueOrDie();
  auto positives_at = [&](double threshold) {
    RelabelWithThreshold(&labeled, threshold);
    size_t count = 0;
    for (const auto& f : labeled) count += f.label;
    return count;
  };
  EXPECT_GE(positives_at(0.0), positives_at(0.01));
  EXPECT_GE(positives_at(0.01), positives_at(0.1));
}

TEST(LabelingTest, InvalidDatasetRejected) {
  data::Dataset bad;
  ml::TaskEvaluator evaluator(QuickEvaluator());
  EXPECT_FALSE(LabelFeatures(bad, evaluator, 0.01).ok());
}

}  // namespace
}  // namespace eafe::fpe
