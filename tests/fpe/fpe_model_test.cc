#include "fpe/fpe_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace eafe::fpe {
namespace {

/// Synthetic labeled features with a clear distributional signature:
/// positives are heavy-tailed (lognormal), negatives are uniform. This is
/// the kind of shape difference the compressed-signature classifier can
/// exploit.
std::vector<LabeledFeature> MakeSeparableFeatures(size_t count,
                                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<LabeledFeature> features;
  features.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    LabeledFeature f;
    f.label = i % 2 == 0 ? 1 : 0;
    const size_t n = 100 + rng.UniformInt(uint64_t{200});
    f.values.resize(n);
    for (double& v : f.values) {
      v = f.label == 1 ? std::exp(rng.Normal(0.0, 1.2))
                       : rng.Uniform(0.0, 1.0);
    }
    f.score_gain = f.label == 1 ? 0.05 : -0.01;
    features.push_back(std::move(f));
  }
  return features;
}

TEST(FpeModelTest, LearnsDistributionalSignature) {
  const auto train = MakeSeparableFeatures(120, 1);
  const auto validation = MakeSeparableFeatures(60, 2);
  FpeModel model;
  ASSERT_TRUE(model.Train(train).ok());
  EXPECT_TRUE(model.trained());
  const auto counts = model.Evaluate(validation).ValueOrDie();
  EXPECT_GT(counts.Recall(), 0.8);
  EXPECT_GT(counts.Precision(), 0.8);
}

TEST(FpeModelTest, PredictProbabilityInUnitInterval) {
  const auto train = MakeSeparableFeatures(80, 3);
  FpeModel model;
  ASSERT_TRUE(model.Train(train).ok());
  for (const auto& f : MakeSeparableFeatures(20, 4)) {
    const double p = model.PredictProbability(f.values).ValueOrDie();
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(FpeModelTest, PredictLabelConsistentWithProbability) {
  const auto train = MakeSeparableFeatures(80, 5);
  FpeModel model;
  ASSERT_TRUE(model.Train(train).ok());
  for (const auto& f : MakeSeparableFeatures(30, 6)) {
    const double p = model.PredictProbability(f.values).ValueOrDie();
    const int label = model.PredictLabel(f.values).ValueOrDie();
    EXPECT_EQ(label, p >= 0.5 ? 1 : 0);
  }
}

TEST(FpeModelTest, HandlesVariableLengthInputs) {
  // The whole point of the compressor: features of any length share one
  // classifier.
  const auto train = MakeSeparableFeatures(100, 7);
  FpeModel model;
  ASSERT_TRUE(model.Train(train).ok());
  Rng rng(8);
  std::vector<double> tiny(12), huge(5000);
  for (double& v : tiny) v = rng.Uniform();
  for (double& v : huge) v = rng.Uniform();
  EXPECT_TRUE(model.PredictProbability(tiny).ok());
  EXPECT_TRUE(model.PredictProbability(huge).ok());
}

TEST(FpeModelTest, MlpClassifierVariant) {
  FpeModel::Options options;
  options.classifier = FpeModel::ClassifierKind::kMlp;
  FpeModel model(options);
  ASSERT_TRUE(model.Train(MakeSeparableFeatures(120, 9)).ok());
  const auto counts =
      model.Evaluate(MakeSeparableFeatures(60, 10)).ValueOrDie();
  EXPECT_GT(counts.Recall(), 0.7);
}

TEST(FpeModelTest, RebalancingHandlesSkewedLabels) {
  // 10% positives.
  Rng rng(11);
  std::vector<LabeledFeature> features;
  for (size_t i = 0; i < 150; ++i) {
    LabeledFeature f;
    f.label = i % 10 == 0 ? 1 : 0;
    f.values.resize(120);
    for (double& v : f.values) {
      v = f.label == 1 ? std::exp(rng.Normal(0.0, 1.2))
                       : rng.Uniform(0.0, 1.0);
    }
    features.push_back(std::move(f));
  }
  FpeModel model;
  ASSERT_TRUE(model.Train(features).ok());
  const auto counts = model.Evaluate(features).ValueOrDie();
  // Rebalancing should preserve recall on the minority positives.
  EXPECT_GT(counts.Recall(), 0.7);
}

TEST(FpeModelTest, TrainingRequiresBothClasses) {
  auto features = MakeSeparableFeatures(40, 12);
  for (auto& f : features) f.label = 1;
  FpeModel model;
  EXPECT_FALSE(model.Train(features).ok());
  for (auto& f : features) f.label = 0;
  EXPECT_FALSE(model.Train(features).ok());
}

TEST(FpeModelTest, TrainingRequiresEnoughFeatures) {
  FpeModel model;
  EXPECT_FALSE(model.Train(MakeSeparableFeatures(2, 13)).ok());
}

TEST(FpeModelTest, ErrorsBeforeTraining) {
  FpeModel model;
  EXPECT_FALSE(model.trained());
  EXPECT_FALSE(model.PredictProbability({1.0, 2.0}).ok());
  EXPECT_FALSE(model.Evaluate(MakeSeparableFeatures(4, 14)).ok());
}

TEST(FpeModelTest, DeterministicGivenSeed) {
  const auto train = MakeSeparableFeatures(60, 15);
  FpeModel a, b;
  ASSERT_TRUE(a.Train(train).ok());
  ASSERT_TRUE(b.Train(train).ok());
  const auto probe = MakeSeparableFeatures(10, 16);
  for (const auto& f : probe) {
    EXPECT_DOUBLE_EQ(a.PredictProbability(f.values).ValueOrDie(),
                     b.PredictProbability(f.values).ValueOrDie());
  }
}

}  // namespace
}  // namespace eafe::fpe
