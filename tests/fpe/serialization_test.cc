#include "fpe/serialization.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/rng.h"

namespace eafe::fpe {
namespace {

std::vector<LabeledFeature> MakeFeatures(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<LabeledFeature> features;
  for (size_t i = 0; i < count; ++i) {
    LabeledFeature f;
    f.label = i % 2 == 0 ? 1 : 0;
    f.values.resize(80 + rng.UniformInt(uint64_t{80}));
    for (double& v : f.values) {
      v = f.label == 1 ? std::exp(rng.Normal(0.0, 1.2))
                       : rng.Uniform(0.0, 1.0);
    }
    features.push_back(std::move(f));
  }
  return features;
}

FpeModel TrainModel(uint64_t seed) {
  FpeModel::Options options;
  options.compressor.dimension = 16;
  options.seed = seed;
  FpeModel model(options);
  EXPECT_TRUE(model.Train(MakeFeatures(80, seed)).ok());
  return model;
}

TEST(FpeSerializationTest, RoundTripPreservesPredictions) {
  const FpeModel model = TrainModel(1);
  const std::string text = SerializeFpeModel(model).ValueOrDie();
  const FpeModel restored = DeserializeFpeModel(text).ValueOrDie();
  EXPECT_TRUE(restored.trained());
  for (const auto& f : MakeFeatures(25, 2)) {
    EXPECT_DOUBLE_EQ(model.PredictProbability(f.values).ValueOrDie(),
                     restored.PredictProbability(f.values).ValueOrDie());
  }
}

TEST(FpeSerializationTest, RoundTripPreservesOptions) {
  FpeModel::Options options;
  options.compressor.scheme = hashing::MinHashScheme::kIcws;
  options.compressor.dimension = 24;
  options.compressor.seed = 99;
  FpeModel model(options);
  ASSERT_TRUE(model.Train(MakeFeatures(60, 3)).ok());
  const FpeModel restored =
      DeserializeFpeModel(SerializeFpeModel(model).ValueOrDie())
          .ValueOrDie();
  EXPECT_EQ(restored.options().compressor.scheme,
            hashing::MinHashScheme::kIcws);
  EXPECT_EQ(restored.options().compressor.dimension, 24u);
  EXPECT_EQ(restored.options().compressor.seed, 99u);
}

TEST(FpeSerializationTest, FileRoundTrip) {
  const FpeModel model = TrainModel(4);
  const std::string path = ::testing::TempDir() + "/fpe_model.txt";
  ASSERT_TRUE(SaveFpeModel(model, path).ok());
  const FpeModel restored = LoadFpeModel(path).ValueOrDie();
  for (const auto& f : MakeFeatures(10, 5)) {
    EXPECT_DOUBLE_EQ(model.PredictProbability(f.values).ValueOrDie(),
                     restored.PredictProbability(f.values).ValueOrDie());
  }
  std::remove(path.c_str());
}

TEST(FpeSerializationTest, UntrainedModelRejected) {
  FpeModel model;
  EXPECT_FALSE(SerializeFpeModel(model).ok());
}

TEST(FpeSerializationTest, MlpModelNotSerializable) {
  FpeModel::Options options;
  options.classifier = FpeModel::ClassifierKind::kMlp;
  options.compressor.dimension = 16;
  FpeModel model(options);
  ASSERT_TRUE(model.Train(MakeFeatures(60, 6)).ok());
  EXPECT_EQ(SerializeFpeModel(model).status().code(),
            StatusCode::kNotImplemented);
}

TEST(FpeSerializationTest, CorruptInputRejected) {
  EXPECT_FALSE(DeserializeFpeModel("").ok());
  EXPECT_FALSE(DeserializeFpeModel("not a model\n").ok());
  const FpeModel model = TrainModel(7);
  std::string text = SerializeFpeModel(model).ValueOrDie();
  // Truncate mid-stream.
  text.resize(text.size() / 2);
  EXPECT_FALSE(DeserializeFpeModel(text).ok());
}

TEST(FpeSerializationTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadFpeModel("/nonexistent/fpe.txt").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace eafe::fpe
