#include "fpe/trainer.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace eafe::fpe {
namespace {

FpeTrainingOptions QuickOptions() {
  FpeTrainingOptions options;
  options.dimensions = {16};
  options.schemes = {hashing::MinHashScheme::kCcws};
  options.evaluator.cv_folds = 3;
  options.evaluator.rf_trees = 6;
  options.evaluator.rf_max_depth = 5;
  return options;
}

TEST(FpeTrainerTest, TrainsEndToEnd) {
  const auto datasets = data::MakePublicCollection(6, 0.6, 42);
  const auto result = TrainFpeModel(datasets, QuickOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->model.trained());
  EXPECT_GT(result->num_labeled_features, 10u);
  EXPECT_GT(result->num_positive_features, 0u);
  EXPECT_LT(result->num_positive_features, result->num_labeled_features);
  EXPECT_EQ(result->sweep.size(), 1u);
  EXPECT_EQ(result->selected.dimension, 16u);
}

TEST(FpeTrainerTest, SweepCoversAllCandidates) {
  const auto datasets = data::MakePublicCollection(6, 0.6, 43);
  FpeTrainingOptions options = QuickOptions();
  options.dimensions = {8, 16};
  options.schemes = {hashing::MinHashScheme::kCcws,
                     hashing::MinHashScheme::kIcws};
  const auto result = TrainFpeModel(datasets, options).ValueOrDie();
  EXPECT_EQ(result.sweep.size(), 4u);
  // Selection obeys Eq. 6: among feasible candidates, max recall.
  for (const FpeCandidateMetrics& candidate : result.sweep) {
    if (candidate.precision > 0.0 && candidate.recall < 1.0) {
      EXPECT_LE(candidate.recall, result.selected.recall);
    }
  }
}

TEST(FpeTrainerTest, SplitsTrainAndValidation) {
  const auto datasets = data::MakePublicCollection(6, 0.6, 44);
  FpeTrainingOptions options = QuickOptions();
  options.validation_fraction = 0.4;
  const auto result = TrainFpeModel(datasets, options).ValueOrDie();
  EXPECT_GT(result.validation_features.size(), 0u);
  EXPECT_GT(result.training_features.size(), 0u);
  // The training split may shrink below its share of the pool because the
  // negative-margin denoising drops ambiguous negatives.
  EXPECT_LE(
      result.training_features.size() + result.validation_features.size(),
      result.num_labeled_features);
  EXPECT_GE(result.validation_features.size(),
            result.num_labeled_features * 2 / 5 - 1);
}

TEST(FpeTrainerTest, ExtraLabeledFeaturesAreMergedIn) {
  const auto datasets = data::MakePublicCollection(5, 0.6, 45);
  FpeTrainingOptions options = QuickOptions();
  const auto baseline = TrainFpeModel(datasets, options).ValueOrDie();

  // Append synthetic extra labeled features; the pool must grow.
  for (int i = 0; i < 10; ++i) {
    LabeledFeature f;
    f.values.assign(50, static_cast<double>(i));
    f.values[0] = -1.0;  // Non-constant.
    f.label = i % 2;
    f.score_gain = i % 2 ? 0.05 : -0.05;
    options.extra_labeled.push_back(std::move(f));
  }
  const auto augmented = TrainFpeModel(datasets, options).ValueOrDie();
  EXPECT_EQ(augmented.num_labeled_features,
            baseline.num_labeled_features + 10);
}

TEST(FpeTrainerTest, RejectsBadOptions) {
  const auto datasets = data::MakePublicCollection(4, 0.6, 46);
  FpeTrainingOptions options = QuickOptions();
  options.validation_fraction = 0.0;
  EXPECT_FALSE(TrainFpeModel(datasets, options).ok());
  EXPECT_FALSE(TrainFpeModel({}, QuickOptions()).ok());
}

TEST(FpeTrainerTest, EvaluateCandidateReportsMetrics) {
  const auto datasets = data::MakePublicCollection(6, 0.6, 47);
  const auto result = TrainFpeModel(datasets, QuickOptions()).ValueOrDie();
  FpeModel model;
  const auto metrics =
      EvaluateCandidate(result.training_features,
                        result.validation_features,
                        hashing::MinHashScheme::kPcws, 32,
                        FpeModel::ClassifierKind::kLogistic, 7, &model)
          .ValueOrDie();
  EXPECT_EQ(metrics.scheme, hashing::MinHashScheme::kPcws);
  EXPECT_EQ(metrics.dimension, 32u);
  EXPECT_GE(metrics.recall, 0.0);
  EXPECT_LE(metrics.recall, 1.0);
  EXPECT_TRUE(model.trained());
}

}  // namespace
}  // namespace eafe::fpe
