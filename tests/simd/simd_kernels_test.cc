#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "hashing/weighted_minhash.h"
#include "runtime/metrics.h"
#include "simd/histogram_kernels.h"
#include "simd/minhash_kernels.h"
#include "simd/portable_math.h"
#include "simd/predict_kernels.h"
#include "simd/simd.h"

// Dispatch-equivalence property tests for the src/simd/ kernel layer.
//
// Contract under test (DESIGN.md §9): every kernel's AVX2 tier returns
// results bit-identical to the scalar reference — argmin indices, class
// counts, split scans, node walks — with one documented exception, the
// gradient-pair Σg/Σh accumulation, which reassociates sums and is held
// to a relative tolerance instead. Sizes deliberately include lengths
// with n % 8 != 0 (and < one vector) so remainder handling is covered.
//
// These tests run single-threaded on purpose: tier dispatch is
// process-global state (SetActiveLevel), and the suite flips it.

namespace eafe::simd {
namespace {

constexpr size_t kSizes[] = {1, 3, 7, 8, 9, 31, 100, 1003};
constexpr uint64_t kSeeds[] = {1, 42, 0xDEADBEEF};

bool HaveAvx2() { return LevelSupported(Level::kAvx2); }

#define EAFE_REQUIRE_AVX2()                                         \
  if (!HaveAvx2()) {                                                \
    GTEST_SKIP() << "AVX2 unsupported on this CPU; scalar tier is " \
                    "the only one to test";                         \
  }

// Restores the dispatch tier a test forced via SetActiveLevel.
class LevelGuard {
 public:
  LevelGuard() : saved_(ActiveLevel()) {}
  ~LevelGuard() { SetActiveLevel(saved_); }
  LevelGuard(const LevelGuard&) = delete;
  LevelGuard& operator=(const LevelGuard&) = delete;

 private:
  Level saved_;
};

// Deterministic test data straight from the kernels' own mixer — no
// ambient entropy, reproducible across platforms.
double TestUniform(uint64_t tag, uint64_t i) {
  return Uniform01(/*seed=*/tag, /*slot=*/i, /*element=*/i * 7 + 1,
                   /*stream=*/9);
}

// Weights with ~1/4 exact zeros (zero weights must never win an argmin).
std::vector<double> MakeWeights(size_t n, uint64_t tag) {
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    const double u = TestUniform(tag, i);
    w[i] = u < 0.25 ? 0.0 : u * 10.0;
  }
  if (n > 0 && w[n / 2] == 0.0) w[n / 2] = 0.5;  // >= 1 positive entry.
  return w;
}

std::vector<double> LogsOf(const std::vector<double>& w) {
  std::vector<double> logs(w.size(), 0.0);
  for (size_t i = 0; i < w.size(); ++i) {
    if (w[i] > 0.0) logs[i] = PortableLog(w[i]);
  }
  return logs;
}

TEST(SimdLevelTest, ParseAndNameRoundTrip) {
  Level level = Level::kAvx2;
  EXPECT_TRUE(ParseLevel("scalar", &level));
  EXPECT_EQ(level, Level::kScalar);
  EXPECT_TRUE(ParseLevel("avx2", &level));
  EXPECT_EQ(level, Level::kAvx2);
  EXPECT_FALSE(ParseLevel("avx512", &level));
  EXPECT_FALSE(ParseLevel("", &level));
  EXPECT_STREQ(LevelName(Level::kScalar), "scalar");
  EXPECT_STREQ(LevelName(Level::kAvx2), "avx2");
}

TEST(SimdLevelTest, ScalarAlwaysSupportedAndForceable) {
  EXPECT_TRUE(LevelSupported(Level::kScalar));
  LevelGuard guard;
  SetActiveLevel(Level::kScalar);
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  if (HaveAvx2()) {
    SetActiveLevel(Level::kAvx2);
    EXPECT_EQ(ActiveLevel(), Level::kAvx2);
  }
}

TEST(SimdLevelTest, DispatchCountersTrackForcedTier) {
  LevelGuard guard;
  SetActiveLevel(Level::kScalar);
  ResetDispatchCounts();
  const std::vector<double> w = MakeWeights(64, 7);
  const std::vector<double> logs = LogsOf(w);
  (void)CwsArgmin(CwsKernelScheme::kIcws, w.data(), logs.data(), w.size(),
                  11, 0);
  EXPECT_EQ(DispatchCount(Kernel::kCwsArgmin, Level::kScalar), 1u);
  EXPECT_EQ(DispatchCount(Kernel::kCwsArgmin, Level::kAvx2), 0u);

  runtime::TextMetricGateway gateway;
  PublishDispatchCounts(&gateway);
  const std::string text = gateway.TextExposition();
  EXPECT_NE(text.find("eafe_simd_dispatch_cws_argmin_scalar 1"),
            std::string::npos)
      << text;
}

TEST(PortableLogTest, MatchesLibmAcrossMagnitudes) {
  const double xs[] = {1e-308, 4.9e-324,  // Subnormal territory.
                       1e-30,  0.001, 0.5,   0.9999999, 1.0,
                       1.0000001, 2.0,   std::exp(1.0), 1e10, 1e300};
  for (const double x : xs) {
    const double got = PortableLog(x);
    const double want = std::log(x);
    if (want == 0.0) {
      EXPECT_EQ(got, 0.0) << "x=" << x;
    } else {
      EXPECT_NEAR(got / want, 1.0, 1e-11) << "x=" << x;
    }
  }
  EXPECT_TRUE(std::isinf(PortableLog(0.0)));
  EXPECT_LT(PortableLog(0.0), 0.0);
  EXPECT_TRUE(std::isinf(PortableLog(-1.0)));
}

TEST(MinHashKernelTest, CwsArgminTiersAgreeBitwise) {
  EAFE_REQUIRE_AVX2();
  for (const CwsKernelScheme scheme :
       {CwsKernelScheme::kIcws, CwsKernelScheme::kPcws,
        CwsKernelScheme::kCcws}) {
    for (const size_t n : kSizes) {
      for (const uint64_t seed : kSeeds) {
        const std::vector<double> w = MakeWeights(n, seed ^ n);
        const std::vector<double> logs = LogsOf(w);
        for (uint64_t slot = 0; slot < 4; ++slot) {
          const size_t scalar = internal::CwsArgminScalar(
              scheme, w.data(), logs.data(), n, seed, slot);
          const size_t avx2 = internal::CwsArgminAvx2(
              scheme, w.data(), logs.data(), n, seed, slot);
          ASSERT_EQ(scalar, avx2)
              << "scheme=" << static_cast<int>(scheme) << " n=" << n
              << " seed=" << seed << " slot=" << slot;
          ASSERT_LT(scalar, n);
          ASSERT_GT(w[scalar], 0.0) << "zero weight selected";
        }
      }
    }
  }
}

TEST(MinHashKernelTest, NoPositiveWeightReturnsN) {
  const std::vector<double> zeros(13, 0.0);
  const std::vector<double> logs(13, 0.0);
  for (const CwsKernelScheme scheme :
       {CwsKernelScheme::kIcws, CwsKernelScheme::kPcws,
        CwsKernelScheme::kCcws}) {
    EXPECT_EQ(internal::CwsArgminScalar(scheme, zeros.data(), logs.data(),
                                        zeros.size(), 3, 0),
              zeros.size());
    if (HaveAvx2()) {
      EXPECT_EQ(internal::CwsArgminAvx2(scheme, zeros.data(), logs.data(),
                                        zeros.size(), 3, 0),
                zeros.size());
    }
  }
}

TEST(MinHashKernelTest, PlainHashArgminTiersAgree) {
  EAFE_REQUIRE_AVX2();
  for (const size_t n : kSizes) {
    std::vector<size_t> elements(n);
    for (size_t i = 0; i < n; ++i) elements[i] = i * 3 + 1;
    for (const uint64_t seed : kSeeds) {
      for (uint64_t slot = 0; slot < 4; ++slot) {
        EXPECT_EQ(
            internal::PlainHashArgminScalar(nullptr, n, seed, slot),
            internal::PlainHashArgminAvx2(nullptr, n, seed, slot))
            << "identity n=" << n << " seed=" << seed << " slot=" << slot;
        EXPECT_EQ(internal::PlainHashArgminScalar(elements.data(), n, seed,
                                                  slot),
                  internal::PlainHashArgminAvx2(elements.data(), n, seed,
                                                slot))
            << "mapped n=" << n << " seed=" << seed << " slot=" << slot;
      }
    }
  }
}

// End-to-end: the public selection API must return identical signatures
// at every forced tier, for every hash-based scheme.
TEST(MinHashKernelTest, WeightedMinHashSelectTierInvariant) {
  EAFE_REQUIRE_AVX2();
  LevelGuard guard;
  for (const hashing::MinHashScheme scheme :
       {hashing::MinHashScheme::kPlain, hashing::MinHashScheme::kIcws,
        hashing::MinHashScheme::kCcws, hashing::MinHashScheme::kPcws,
        hashing::MinHashScheme::kLicws}) {
    for (const size_t n : {size_t{5}, size_t{64}, size_t{257}}) {
      const std::vector<double> w = MakeWeights(n, 0xABC ^ n);
      SetActiveLevel(Level::kScalar);
      const std::vector<size_t> scalar =
          hashing::WeightedMinHashSelect(scheme, w, 32, 77);
      SetActiveLevel(Level::kAvx2);
      const std::vector<size_t> avx2 =
          hashing::WeightedMinHashSelect(scheme, w, 32, 77);
      EXPECT_EQ(scalar, avx2)
          << hashing::MinHashSchemeToString(scheme) << " n=" << n;
      // Quantization indices must agree too, not just the elements.
      if (scheme != hashing::MinHashScheme::kPlain) {
        for (uint64_t slot = 0; slot < 8; ++slot) {
          SetActiveLevel(Level::kScalar);
          const hashing::CwsSample a =
              hashing::ConsistentSample(scheme, w, slot, 77);
          SetActiveLevel(Level::kAvx2);
          const hashing::CwsSample b =
              hashing::ConsistentSample(scheme, w, slot, 77);
          EXPECT_EQ(a.element, b.element);
          EXPECT_EQ(a.quantization, b.quantization);
        }
      }
    }
  }
}

// --- Histogram kernels -----------------------------------------------

struct HistogramFixture {
  size_t bins = 19;  // Not a multiple of any vector width.
  std::vector<uint8_t> codes;
  std::vector<size_t> indices;
  std::vector<int> classes;
  std::vector<double> values;

  explicit HistogramFixture(size_t rows, uint64_t tag) {
    codes.resize(rows);
    classes.resize(rows);
    values.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
      codes[r] = static_cast<uint8_t>(
          static_cast<size_t>(TestUniform(tag, r) * 1000.0) % bins);
      classes[r] = static_cast<int>(r % 3);
      values[r] = TestUniform(tag ^ 1, r) * 4.0 - 2.0;
    }
    // Node row set: a non-contiguous, repeating subset.
    for (size_t r = 0; r < rows; ++r) {
      if (r % 5 != 3) indices.push_back(r);
      if (r % 11 == 0) indices.push_back(r);
    }
  }
};

TEST(HistogramKernelTest, ClassCountsTiersAgreeBitwise) {
  EAFE_REQUIRE_AVX2();
  for (const size_t rows : kSizes) {
    const HistogramFixture f(rows, 0x51);
    const size_t width = 3;
    std::vector<double> scalar(f.bins * width, 0.0);
    std::vector<double> avx2(f.bins * width, 0.0);
    internal::AccumulateClassCountsScalar(f.codes.data(), f.indices.data(),
                                          f.indices.size(),
                                          f.classes.data(), width,
                                          scalar.data());
    internal::AccumulateClassCountsAvx2(f.codes.data(), f.indices.data(),
                                        f.indices.size(), f.classes.data(),
                                        f.bins, width, avx2.data());
    ASSERT_EQ(scalar, avx2) << "rows=" << rows;
  }
}

TEST(HistogramKernelTest, GradientPairsExactCountsToleratedSums) {
  EAFE_REQUIRE_AVX2();
  for (const size_t rows : kSizes) {
    const HistogramFixture f(rows, 0x52);
    std::vector<double> g(f.codes.size()), h(f.codes.size());
    for (size_t r = 0; r < g.size(); ++r) {
      g[r] = TestUniform(0x53, r) * 2.0 - 1.0;
      h[r] = TestUniform(0x54, r) * 0.25;
    }
    std::vector<double> scalar(f.bins * 3, 0.0);
    std::vector<double> avx2(f.bins * 3, 0.0);
    internal::AccumulateGradientPairsScalar(f.codes.data(),
                                            f.indices.data(),
                                            f.indices.size(), g.data(),
                                            h.data(), scalar.data());
    internal::AccumulateGradientPairsAvx2(
        f.codes.data(), f.indices.data(), f.indices.size(), g.data(),
        h.data(), f.bins, avx2.data());
    for (size_t b = 0; b < f.bins; ++b) {
      // Counts: integer adds, exact at every tier.
      ASSERT_EQ(scalar[b * 3], avx2[b * 3]) << "bin " << b;
      // Σg/Σh: interleaved accumulation reassociates — tolerance contract.
      for (size_t k = 1; k < 3; ++k) {
        const double a = scalar[b * 3 + k];
        const double v = avx2[b * 3 + k];
        ASSERT_NEAR(v, a, 1e-9 * (std::abs(a) + 1.0))
            << "bin " << b << " component " << k;
      }
    }
  }
}

TEST(HistogramKernelTest, SubtractTiersAgreeBitwiseAndAlias) {
  EAFE_REQUIRE_AVX2();
  for (const size_t n : kSizes) {
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = TestUniform(0x61, i) * 100.0;
      b[i] = TestUniform(0x62, i) * 50.0;
    }
    std::vector<double> scalar(n, 0.0), avx2(n, 0.0);
    internal::SubtractArraysScalar(a.data(), b.data(), n, scalar.data());
    internal::SubtractArraysAvx2(a.data(), b.data(), n, avx2.data());
    EXPECT_EQ(scalar, avx2) << "n=" << n;
    // out may alias a (the in-place parent-minus-sibling use).
    std::vector<double> aliased = a;
    internal::SubtractArraysAvx2(aliased.data(), b.data(), n,
                                 aliased.data());
    EXPECT_EQ(aliased, scalar) << "aliased n=" << n;
  }
}

TEST(HistogramKernelTest, SplitScansTiersAgreeBitwise) {
  EAFE_REQUIRE_AVX2();
  for (const size_t rows : {size_t{40}, size_t{333}, size_t{1003}}) {
    const HistogramFixture f(rows, 0x71);
    std::vector<double> g(f.codes.size()), h(f.codes.size());
    for (size_t r = 0; r < g.size(); ++r) {
      g[r] = TestUniform(0x72, r) * 2.0 - 1.0;
      h[r] = 0.1 + TestUniform(0x73, r) * 0.25;
    }
    std::vector<double> grad_hist(f.bins * 3, 0.0);
    internal::AccumulateGradientPairsScalar(
        f.codes.data(), f.indices.data(), f.indices.size(), g.data(),
        h.data(), grad_hist.data());
    double tn = 0.0, tg = 0.0, th = 0.0;
    for (size_t b = 0; b < f.bins; ++b) {
      tn += grad_hist[b * 3];
      tg += grad_hist[b * 3 + 1];
      th += grad_hist[b * 3 + 2];
    }
    const double lambda = 1.0;
    const double parent_term = tg * tg / (th + lambda);
    for (const double min_leaf : {1.0, 8.0}) {
      const SplitScan s = internal::GradientSplitScanScalar(
          grad_hist.data(), f.bins, tn, tg, th, min_leaf, lambda,
          parent_term);
      const SplitScan v = internal::GradientSplitScanAvx2(
          grad_hist.data(), f.bins, tn, tg, th, min_leaf, lambda,
          parent_term);
      EXPECT_EQ(s.bin, v.bin) << "rows=" << rows;
      EXPECT_EQ(s.gain, v.gain) << "rows=" << rows;
    }

    // Regression triples {count, Σy, Σy²} for the variance scan.
    std::vector<double> reg_hist(f.bins * 3, 0.0);
    double n = 0.0, sum = 0.0, sum2 = 0.0;
    for (const size_t r : f.indices) {
      const size_t b = f.codes[r];
      reg_hist[b * 3] += 1.0;
      reg_hist[b * 3 + 1] += f.values[r];
      reg_hist[b * 3 + 2] += f.values[r] * f.values[r];
      n += 1.0;
      sum += f.values[r];
      sum2 += f.values[r] * f.values[r];
    }
    const double mean = sum / n;
    const double parent_impurity = sum2 / n - mean * mean;
    for (const double min_leaf : {1.0, 8.0}) {
      const SplitScan s = internal::RegressionSplitScanScalar(
          reg_hist.data(), f.bins, n, sum, sum2, min_leaf,
          parent_impurity);
      const SplitScan v = internal::RegressionSplitScanAvx2(
          reg_hist.data(), f.bins, n, sum, sum2, min_leaf,
          parent_impurity);
      EXPECT_EQ(s.bin, v.bin) << "rows=" << rows;
      EXPECT_EQ(s.gain, v.gain) << "rows=" << rows;
    }
  }
}

// --- Flat-predictor walk ---------------------------------------------

TEST(PredictKernelTest, WalkRowsTierInvariantAndMatchesNaive) {
  LevelGuard guard;
  // A depth-3 tree over 4 features: 7 internal nodes, 8 leaves packed as
  // self-loops, exactly how FlatPredictor lays trees out.
  const uint32_t steps = 3;
  const size_t stride = 4;
  std::vector<PackedNode> nodes(15);
  for (uint32_t i = 0; i < 7; ++i) {
    nodes[i].feature = static_cast<int32_t>(i % stride);
    nodes[i].split_bin = static_cast<uint8_t>(40 * (i % 3) + 30);
    nodes[i].left = 2 * i + 1;
    nodes[i].right = 2 * i + 2;
  }
  for (uint32_t i = 7; i < 15; ++i) {
    nodes[i].feature = 0;
    nodes[i].left = i;
    nodes[i].right = i;
  }
  for (const size_t n : kSizes) {
    std::vector<uint8_t> codes(n * stride);
    for (size_t i = 0; i < codes.size(); ++i) {
      codes[i] = static_cast<uint8_t>(
          static_cast<size_t>(TestUniform(0x81, i) * 997.0) % 128);
    }
    std::vector<uint32_t> naive(n, 0), tiered(n, 0);
    internal::WalkRowsBlocked<1>(nodes.data(), codes.data(), stride, 0,
                                 steps, n, naive.data());
    for (const Level level : {Level::kScalar, Level::kAvx2}) {
      if (!LevelSupported(level)) continue;
      SetActiveLevel(level);
      WalkRows(nodes.data(), codes.data(), stride, 0, steps, n,
               tiered.data());
      EXPECT_EQ(tiered, naive)
          << "level=" << LevelName(level) << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace eafe::simd
