#include "runtime/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace eafe::runtime {
namespace {

TEST(MetricsTest, VoidGatewayDiscardsEverything) {
  MetricGateway* gateway = VoidMetrics();
  ASSERT_NE(gateway, nullptr);
  MetricCounter* counter = gateway->Counter("c", "help");
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->Value(), 0u);
  MetricGauge* gauge = gateway->Gauge("g", "help");
  gauge->Set(3.0);
  gauge->Add(1.0);
  EXPECT_EQ(gauge->Value(), 0.0);
  MetricHistogram* histogram = gateway->Histogram("h", "help", {});
  histogram->Observe(0.5);
  EXPECT_EQ(histogram->Count(), 0u);
  EXPECT_EQ(histogram->Sum(), 0.0);
  EXPECT_EQ(gateway->TextExposition(), "");
}

TEST(MetricsTest, CounterAccumulates) {
  TextMetricGateway gateway;
  MetricCounter* counter =
      gateway.Counter("eafe_test_total", "things that happened");
  counter->Increment();
  counter->Increment(9);
  EXPECT_EQ(counter->Value(), 10u);
  // Lookup-or-create: same name yields the same instrument.
  EXPECT_EQ(gateway.Counter("eafe_test_total", "ignored"), counter);
}

TEST(MetricsTest, GaugeSetsAndAdds) {
  TextMetricGateway gateway;
  MetricGauge* gauge = gateway.Gauge("eafe_test_level", "current level");
  gauge->Set(4.0);
  gauge->Add(-1.5);
  EXPECT_EQ(gauge->Value(), 2.5);
}

TEST(MetricsTest, HistogramBucketsCumulative) {
  TextMetricGateway gateway;
  MetricHistogram* histogram = gateway.Histogram(
      "eafe_test_seconds", "latency", {0.1, 1.0, 10.0});
  histogram->Observe(0.05);
  histogram->Observe(0.5);
  histogram->Observe(5.0);
  histogram->Observe(50.0);  // Lands in the implicit +Inf bucket.
  EXPECT_EQ(histogram->Count(), 4u);
  EXPECT_NEAR(histogram->Sum(), 55.55, 1e-9);
  const std::string text = gateway.TextExposition();
  EXPECT_NE(text.find("eafe_test_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("eafe_test_seconds_bucket{le=\"+Inf\"} 4"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("eafe_test_seconds_count 4"), std::string::npos);
}

TEST(MetricsTest, TextExpositionSortedWithHelpAndType) {
  TextMetricGateway gateway;
  gateway.Counter("eafe_zzz_total", "last")->Increment();
  gateway.Gauge("eafe_aaa_level", "first")->Set(1.0);
  const std::string text = gateway.TextExposition();
  EXPECT_NE(text.find("# HELP eafe_aaa_level first"), std::string::npos);
  EXPECT_NE(text.find("# TYPE eafe_aaa_level gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE eafe_zzz_total counter"), std::string::npos);
  EXPECT_LT(text.find("eafe_aaa_level"), text.find("eafe_zzz_total"));
}

TEST(MetricsTest, GlobalGatewayDefaultsToVoidAndRestores) {
  EXPECT_EQ(GlobalMetrics(), VoidMetrics());
  {
    TextMetricGateway gateway;
    SetGlobalMetrics(&gateway);
    EXPECT_EQ(GlobalMetrics(), &gateway);
    GlobalMetrics()->Counter("eafe_global_total", "seen")->Increment();
    EXPECT_NE(gateway.TextExposition().find("eafe_global_total 1"),
              std::string::npos);
    SetGlobalMetrics(nullptr);
  }
  EXPECT_EQ(GlobalMetrics(), VoidMetrics());
}

}  // namespace
}  // namespace eafe::runtime
