#include "runtime/pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.h"

namespace eafe::runtime {
namespace {

struct Item {
  int id = 0;
  int doubled = 0;
  int plus_one = 0;
};

Pipeline<Item>::StageSpec Stage(const std::string& name,
                                size_t workers,
                                std::function<void(Item&)> fn) {
  Pipeline<Item>::StageSpec spec;
  spec.name = name;
  spec.workers = workers;
  spec.queue_capacity = 4;
  spec.fn = std::move(fn);
  return spec;
}

std::vector<Item> Drain(Pipeline<Item>& pipeline) {
  std::vector<Item> out;
  while (auto item = pipeline.NextOrdered()) out.push_back(*item);
  return out;
}

TEST(RuntimePipelineTest, InlineWhenPoolMissing) {
  std::vector<Pipeline<Item>::StageSpec> stages;
  stages.push_back(Stage("double", 1, [](Item& x) { x.doubled = x.id * 2; }));
  stages.push_back(
      Stage("inc", 1, [](Item& x) { x.plus_one = x.doubled + 1; }));
  Pipeline<Item>::Options options;  // Null pool -> inline.
  Pipeline<Item> pipeline(std::move(stages), options);
  EXPECT_FALSE(pipeline.async());
  for (int i = 0; i < 5; ++i) pipeline.Submit(Item{i, 0, 0});
  pipeline.Close();
  const std::vector<Item> out = Drain(pipeline);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)].id, i);
    EXPECT_EQ(out[static_cast<size_t>(i)].plus_one, i * 2 + 1);
  }
}

TEST(RuntimePipelineTest, InlineWhenPoolTooSmall) {
  ThreadPool pool(1);
  std::vector<Pipeline<Item>::StageSpec> stages;
  stages.push_back(Stage("a", 1, [](Item&) {}));
  stages.push_back(Stage("b", 1, [](Item&) {}));  // Needs 2 > 1 workers.
  Pipeline<Item>::Options options;
  options.pool = &pool;
  Pipeline<Item> pipeline(std::move(stages), options);
  EXPECT_FALSE(pipeline.async());
}

TEST(RuntimePipelineTest, AsyncRunsAllStagesAndPreservesOrder) {
  ThreadPool pool(4);
  std::vector<Pipeline<Item>::StageSpec> stages;
  stages.push_back(Stage("double", 1, [](Item& x) { x.doubled = x.id * 2; }));
  stages.push_back(
      Stage("inc", 3, [](Item& x) { x.plus_one = x.doubled + 1; }));
  Pipeline<Item>::Options options;
  options.pool = &pool;
  Pipeline<Item> pipeline(std::move(stages), options);
  EXPECT_TRUE(pipeline.async());
  constexpr int kItems = 100;
  for (int i = 0; i < kItems; ++i) pipeline.Submit(Item{i, 0, 0});
  pipeline.Close();
  const std::vector<Item> out = Drain(pipeline);
  ASSERT_EQ(out.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)].id, i);
    EXPECT_EQ(out[static_cast<size_t>(i)].plus_one, i * 2 + 1);
  }
}

TEST(RuntimePipelineTest, OutOfOrderCompletionIsResequenced) {
  // Three parallel workers, and the first item is by far the slowest:
  // later items finish first, but NextOrdered() must still deliver
  // submission order.
  ThreadPool pool(3);
  std::atomic<int> first_done{0};
  std::atomic<int> finished_before_first{0};
  std::vector<Pipeline<Item>::StageSpec> stages;
  stages.push_back(Stage("work", 3, [&](Item& x) {
    if (x.id == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      first_done.store(1);
    } else if (first_done.load() == 0) {
      finished_before_first.fetch_add(1);
    }
    x.doubled = x.id * 2;
  }));
  Pipeline<Item>::Options options;
  options.pool = &pool;
  Pipeline<Item> pipeline(std::move(stages), options);
  ASSERT_TRUE(pipeline.async());
  for (int i = 0; i < 8; ++i) pipeline.Submit(Item{i, 0, 0});
  pipeline.Close();
  const std::vector<Item> out = Drain(pipeline);
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)].id, i);
  }
  // The slow head did not stop the other workers from finishing first —
  // i.e. the order above really was restored from out-of-order
  // completion, not produced serially.
  EXPECT_GT(finished_before_first.load(), 0);
}

TEST(RuntimePipelineTest, BackpressureBoundsWorkInFlight) {
  // One worker blocked inside the stage, a 2-slot queue: a producer
  // pushing five items must stall after 1 (in the stage) + 2 (queued),
  // and resume once the gate opens.
  ThreadPool stage_pool(1);
  ThreadPool producer_pool(1);
  std::atomic<bool> gate{false};
  std::atomic<int> entered{0};
  std::vector<Pipeline<Item>::StageSpec> stages;
  Pipeline<Item>::StageSpec spec;
  spec.name = "gated";
  spec.workers = 1;
  spec.queue_capacity = 2;
  spec.fn = [&](Item&) {
    entered.fetch_add(1);
    while (!gate.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  stages.push_back(std::move(spec));
  Pipeline<Item>::Options options;
  options.pool = &stage_pool;
  Pipeline<Item> pipeline(std::move(stages), options);
  ASSERT_TRUE(pipeline.async());

  std::atomic<bool> producer_done{false};
  std::future<void> producer = producer_pool.Submit([&] {
    for (int i = 0; i < 5; ++i) pipeline.Submit(Item{i, 0, 0});
    pipeline.Close();
    producer_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(producer_done.load());  // Stalled on the full queue.
  EXPECT_EQ(entered.load(), 1);        // Only the in-stage item started.
  gate.store(true);
  const std::vector<Item> out = Drain(pipeline);
  producer.wait();
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(entered.load(), 5);
}

TEST(RuntimePipelineTest, DrainAfterCloseEndsWithNullopt) {
  ThreadPool pool(2);
  std::vector<Pipeline<Item>::StageSpec> stages;
  stages.push_back(Stage("noop", 2, [](Item&) {}));
  Pipeline<Item>::Options options;
  options.pool = &pool;
  Pipeline<Item> pipeline(std::move(stages), options);
  pipeline.Submit(Item{1, 0, 0});
  pipeline.Submit(Item{2, 0, 0});
  pipeline.Close();
  EXPECT_TRUE(pipeline.NextOrdered().has_value());
  EXPECT_TRUE(pipeline.NextOrdered().has_value());
  EXPECT_FALSE(pipeline.NextOrdered().has_value());
  EXPECT_FALSE(pipeline.NextOrdered().has_value());  // Stays ended.
}

TEST(RuntimePipelineTest, EmptyPipelineClosesClean) {
  ThreadPool pool(2);
  std::vector<Pipeline<Item>::StageSpec> stages;
  stages.push_back(Stage("noop", 2, [](Item&) {}));
  Pipeline<Item>::Options options;
  options.pool = &pool;
  Pipeline<Item> pipeline(std::move(stages), options);
  pipeline.Close();
  EXPECT_FALSE(pipeline.NextOrdered().has_value());
}

TEST(RuntimePipelineTest, DestructorJoinsWithoutDrain) {
  // Dropping a pipeline without draining must not hang or leak workers.
  ThreadPool pool(2);
  std::vector<Pipeline<Item>::StageSpec> stages;
  stages.push_back(Stage("noop", 2, [](Item& x) { x.doubled = x.id; }));
  Pipeline<Item>::Options options;
  options.pool = &pool;
  Pipeline<Item> pipeline(std::move(stages), options);
  for (int i = 0; i < 10; ++i) pipeline.Submit(Item{i, 0, 0});
  // No Close(), no Drain: the destructor closes and joins.
}

}  // namespace
}  // namespace eafe::runtime
