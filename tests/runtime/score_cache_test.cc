#include "runtime/score_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/thread_pool.h"

namespace eafe::runtime {
namespace {

TEST(ScoreCacheTest, InsertThenLookup) {
  ScoreCache cache;
  EXPECT_FALSE(cache.Lookup(42).has_value());
  cache.Insert(42, 0.75);
  const std::optional<double> hit = cache.Lookup(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 0.75);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ScoreCacheTest, InsertRefreshesExistingKey) {
  ScoreCache cache;
  cache.Insert(7, 0.1);
  cache.Insert(7, 0.2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(*cache.Lookup(7), 0.2);
  EXPECT_EQ(cache.stats().insertions, 1u);  // The refresh is not an insert.
}

TEST(ScoreCacheTest, EvictsLeastRecentlyUsedWithinShard) {
  // One shard makes recency global and the eviction order observable.
  ScoreCache::Options options;
  options.capacity = 3;
  options.shards = 1;
  ScoreCache cache(options);
  cache.Insert(1, 1.0);
  cache.Insert(2, 2.0);
  cache.Insert(3, 3.0);
  EXPECT_TRUE(cache.Lookup(1).has_value());  // 1 becomes most recent.
  cache.Insert(4, 4.0);                      // Evicts 2, the LRU entry.
  EXPECT_FALSE(cache.Lookup(2).has_value());
  EXPECT_TRUE(cache.Lookup(1).has_value());
  EXPECT_TRUE(cache.Lookup(3).has_value());
  EXPECT_TRUE(cache.Lookup(4).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(ScoreCacheTest, StatsCountHitsAndMisses) {
  ScoreCache cache;
  cache.Insert(5, 0.5);
  (void)cache.Lookup(5);
  (void)cache.Lookup(5);
  (void)cache.Lookup(6);
  const ScoreCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 2.0 / 3.0);
}

TEST(ScoreCacheTest, ClearEmptiesEveryShard) {
  ScoreCache cache;
  for (uint64_t k = 0; k < 100; ++k) cache.Insert(k, static_cast<double>(k));
  EXPECT_GT(cache.size(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(0).has_value());
}

TEST(ScoreCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  ScoreCache::Options options;
  options.shards = 5;
  ScoreCache cache(options);
  EXPECT_EQ(cache.num_shards(), 8u);
}

TEST(ScoreCacheTest, ConcurrentMixedWorkloadIsConsistent) {
  ScoreCache::Options options;
  options.capacity = 4096;
  ScoreCache cache(options);
  ThreadPool pool(8);
  constexpr uint64_t kKeys = 512;
  // Writers and readers hammer overlapping keys; values are derived from
  // keys, so any hit must carry the writer's exact value.
  std::atomic<size_t> bad_values{0};
  ParallelFor(&pool, 16 * kKeys, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const uint64_t key = i % kKeys;
      const double expected = static_cast<double>(key) * 0.5;
      if (i % 3 == 0) {
        cache.Insert(key, expected);
      } else if (std::optional<double> hit = cache.Lookup(key)) {
        if (*hit != expected) bad_values.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(bad_values.load(), 0u);
  for (uint64_t key = 0; key < kKeys; ++key) cache.Insert(key, 1.0);
  for (uint64_t key = 0; key < kKeys; ++key) {
    ASSERT_TRUE(cache.Lookup(key).has_value());
  }
}

}  // namespace
}  // namespace eafe::runtime
