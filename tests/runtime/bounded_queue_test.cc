#include "runtime/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/thread_pool.h"

namespace eafe::runtime {
namespace {

BoundedQueue<int>::Options QueueOptions(size_t capacity) {
  BoundedQueue<int>::Options options;
  options.capacity = capacity;
  return options;
}

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(QueueOptions(4));
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_TRUE(queue.Push(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_EQ(queue.Pop().value(), 3);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, TryPushRefusesWhenFull) {
  BoundedQueue<int> queue(QueueOptions(2));
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // At capacity.
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_TRUE(queue.TryPush(3));  // Space freed.
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> queue(QueueOptions(0));
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(7));
  EXPECT_FALSE(queue.TryPush(8));
}

TEST(BoundedQueueTest, CloseDrainsBacklogThenEnds) {
  BoundedQueue<int> queue(QueueOptions(4));
  EXPECT_TRUE(queue.Push(10));
  EXPECT_TRUE(queue.Push(11));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.Push(12));     // Closed: push refused...
  EXPECT_EQ(queue.Pop().value(), 10);  // ...but the backlog drains.
  EXPECT_EQ(queue.Pop().value(), 11);
  EXPECT_FALSE(queue.Pop().has_value());  // Closed and drained.
  EXPECT_FALSE(queue.Pop().has_value());  // Stays ended.
}

TEST(BoundedQueueTest, PushBlocksOnFullUntilConsumerFreesSpace) {
  BoundedQueue<int> queue(QueueOptions(1));
  ASSERT_TRUE(queue.Push(0));  // Fill.
  ThreadPool pool(1);
  std::atomic<bool> producer_done{false};
  std::future<void> producer = pool.Submit([&] {
    EXPECT_TRUE(queue.Push(1));  // Blocks until the pop below.
    producer_done.store(true);
  });
  // Give the producer ample time to reach the blocking push: it must
  // still be stuck because nothing has been popped.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(producer_done.load());
  EXPECT_EQ(queue.Pop().value(), 0);  // Frees one slot.
  EXPECT_EQ(queue.Pop().value(), 1);  // Blocks until the producer lands it.
  producer.wait();
  EXPECT_TRUE(producer_done.load());
}

TEST(BoundedQueueTest, CloseUnblocksStalledProducer) {
  BoundedQueue<int> queue(QueueOptions(1));
  ASSERT_TRUE(queue.Push(0));
  ThreadPool pool(1);
  std::atomic<int> push_result{-1};
  std::future<void> producer = pool.Submit(
      [&] { push_result.store(queue.Push(1) ? 1 : 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  producer.wait();
  EXPECT_EQ(push_result.load(), 0);  // Refused, item dropped.
  EXPECT_EQ(queue.Pop().value(), 0);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueTest, ManyItemsThroughTinyQueue) {
  // Backpressure liveness: a 2-slot queue must still move every item,
  // in order, with producer and consumer running concurrently.
  BoundedQueue<int> queue(QueueOptions(2));
  constexpr int kItems = 500;
  ThreadPool pool(1);
  std::future<void> producer = pool.Submit([&] {
    for (int i = 0; i < kItems; ++i) EXPECT_TRUE(queue.Push(i));
    queue.Close();
  });
  std::vector<int> received;
  while (auto item = queue.Pop()) received.push_back(*item);
  producer.wait();
  ASSERT_EQ(received.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
}

TEST(BoundedQueueTest, PublishesDepthGaugeAndStallHistograms) {
  TextMetricGateway gateway;
  BoundedQueue<int>::Options options;
  options.capacity = 2;
  options.metric_prefix = "test_stage";
  options.metrics = &gateway;
  BoundedQueue<int> queue(options);

  MetricGauge* depth = gateway.Gauge("test_stage_queue_depth", "");
  EXPECT_EQ(depth->Value(), 0.0);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_EQ(depth->Value(), 1.0);
  EXPECT_TRUE(queue.Push(2));
  EXPECT_EQ(depth->Value(), 2.0);
  (void)queue.Pop();
  EXPECT_EQ(depth->Value(), 1.0);
  (void)queue.Pop();
  EXPECT_EQ(depth->Value(), 0.0);

  // The stall histograms are registered (zero observations so far — no
  // producer or consumer ever waited).
  MetricHistogram* push_stall =
      gateway.Histogram("test_stage_queue_push_stall_seconds", "", {});
  MetricHistogram* pop_stall =
      gateway.Histogram("test_stage_queue_pop_stall_seconds", "", {});
  EXPECT_EQ(push_stall->Count(), 0u);
  EXPECT_EQ(pop_stall->Count(), 0u);
}

}  // namespace
}  // namespace eafe::runtime
