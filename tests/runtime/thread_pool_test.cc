#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <latch>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace eafe::runtime {
namespace {

TEST(ThreadPoolTest, StartupAndShutdown) {
  for (size_t threads = 1; threads <= 8; ++threads) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
  }
}

TEST(ThreadPoolTest, ZeroThreadsResolvesToHardware) {
  ThreadPool pool(ThreadPool::Options{});
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (std::future<void>& future : futures) future.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit(
          [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // Destructor joins after the queue drains.
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitExceptionLandsInFuture) {
  ThreadPool pool(2);
  std::future<void> future =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives the throwing task.
  std::future<void> ok = pool.Submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPoolTest, WorkerIdentityOffPool) {
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), -1);
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  EXPECT_EQ(ThreadPool::CurrentWorkerRng(), nullptr);
}

TEST(ThreadPoolTest, WorkerRngStreamsAreDeterministicPerIndex) {
  // Pin every worker inside a task simultaneously (via the latch) so each
  // records its own stream's first draw exactly once.
  auto collect = [](uint64_t seed) {
    constexpr size_t kThreads = 4;
    ThreadPool::Options options;
    options.num_threads = kThreads;
    options.rng_seed = seed;
    ThreadPool pool(options);
    std::latch ready(kThreads);
    std::mutex mutex;
    std::map<int, uint64_t> draws;
    std::vector<std::future<void>> futures;
    for (size_t i = 0; i < kThreads; ++i) {
      futures.push_back(pool.Submit([&] {
        ready.arrive_and_wait();  // Forces one task per worker.
        const int index = ThreadPool::CurrentWorkerIndex();
        ASSERT_GE(index, 0);
        ASSERT_NE(ThreadPool::CurrentWorkerRng(), nullptr);
        const uint64_t value = ThreadPool::CurrentWorkerRng()->Next();
        std::lock_guard<std::mutex> lock(mutex);
        draws[index] = value;
      }));
    }
    for (std::future<void>& future : futures) future.get();
    return draws;
  };

  const auto first = collect(99);
  const auto second = collect(99);
  const auto other = collect(100);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first, second);  // Same seed -> same per-worker streams.
  EXPECT_NE(first, other);   // Streams depend on the pool seed.
  // Streams are distinct across workers.
  std::vector<uint64_t> values;
  for (const auto& [index, value] : first) values.push_back(value);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(std::unique(values.begin(), values.end()), values.end());
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  ParallelFor(&pool, kN, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      touched[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ReductionUnderContentionIsExact) {
  ThreadPool pool(8);
  constexpr size_t kN = 100000;
  std::atomic<long long> sum{0};
  for (int repeat = 0; repeat < 5; ++repeat) {
    sum.store(0);
    ParallelFor(&pool, kN, [&](size_t begin, size_t end) {
      long long local = 0;
      for (size_t i = begin; i < end; ++i) local += static_cast<long long>(i);
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(),
              static_cast<long long>(kN) * (static_cast<long long>(kN) - 1) / 2);
  }
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> touched(100, 0);
  ParallelFor(nullptr, touched.size(), [&](size_t begin, size_t end) {
    EXPECT_FALSE(ThreadPool::OnWorkerThread());
    for (size_t i = begin; i < end; ++i) ++touched[i];
  });
  for (int count : touched) EXPECT_EQ(count, 1);
}

TEST(ParallelForTest, NestedCallRunsInlineOnWorker) {
  ThreadPool pool(4);
  std::atomic<int> inner{0};
  ParallelFor(&pool, 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const int outer_worker = ThreadPool::CurrentWorkerIndex();
      // Nested region must not hop threads: it runs inline on this worker.
      ParallelFor(&pool, 16, [&, outer_worker](size_t b, size_t e) {
        EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), outer_worker);
        inner.fetch_add(static_cast<int>(e - b),
                        std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(inner.load(), 8 * 16);
}

TEST(ParallelForTest, PropagatesLowestBlockException) {
  ThreadPool pool(4);
  constexpr size_t kN = 64;
  auto throwing = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (i % 16 == 3) {  // One failure per block of 16.
        throw std::out_of_range("block " + std::to_string(i / 16));
      }
    }
  };
  try {
    ParallelFor(&pool, kN, throwing);
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::out_of_range& error) {
    EXPECT_STREQ(error.what(), "block 0");
  }
  // The pool remains usable after a failed region.
  std::atomic<int> counter{0};
  ParallelFor(&pool, 32, [&](size_t begin, size_t end) {
    counter.fetch_add(static_cast<int>(end - begin),
                      std::memory_order_relaxed);
  });
  EXPECT_EQ(counter.load(), 32);
}

TEST(GlobalPoolTest, SerialConfigurationHasNoPool) {
  SetGlobalThreads(1);
  EXPECT_EQ(GlobalThreads(), 1u);
  EXPECT_EQ(GlobalPool(), nullptr);
}

TEST(GlobalPoolTest, RebuildsOnSizeChange) {
  SetGlobalThreads(4);
  ThreadPool* pool = GlobalPool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->num_threads(), 4u);
  EXPECT_EQ(GlobalPool(), pool);  // Stable while the size is unchanged.
  SetGlobalThreads(2);
  ThreadPool* rebuilt = GlobalPool();
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(rebuilt->num_threads(), 2u);
  SetGlobalThreads(1);
  EXPECT_EQ(GlobalPool(), nullptr);
}

}  // namespace
}  // namespace eafe::runtime
