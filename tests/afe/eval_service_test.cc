#include "afe/eval_service.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "afe/nfs.h"
#include "data/registry.h"
#include "runtime/thread_pool.h"

namespace eafe::afe {
namespace {

data::Dataset SmallTarget() {
  data::MaterializeOptions options;
  options.max_samples = 150;
  options.max_features = 5;
  return data::MakeTargetDatasetByName("PimaIndian", options).ValueOrDie();
}

ml::EvaluatorOptions QuickEvaluator() {
  ml::EvaluatorOptions options;
  options.cv_folds = 3;
  options.rf_trees = 4;
  options.rf_max_depth = 3;
  options.seed = 5;
  return options;
}

/// `count` syntactically valid candidates with distinct names.
std::vector<SpaceFeature> MakeCandidates(const FeatureSpace& space,
                                         size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<SpaceFeature> candidates;
  std::unordered_set<std::string> names;
  while (candidates.size() < count) {
    const size_t group = rng.UniformInt(space.num_groups());
    const FeatureSpace::Action action = space.SampleRandomAction(group, &rng);
    auto candidate = space.GenerateCandidate(action);
    if (!candidate.ok()) continue;
    if (!names.insert(candidate->column.name()).second) continue;
    candidates.push_back(std::move(candidate).ValueOrDie());
  }
  return candidates;
}

class EvalServiceTest : public ::testing::Test {
 protected:
  void TearDown() override { runtime::SetGlobalThreads(1); }
};

TEST_F(EvalServiceTest, GainMatchesSerialEvaluateCandidateGain) {
  runtime::SetGlobalThreads(1);
  const data::Dataset dataset = SmallTarget();
  FeatureSpace space(dataset, {});
  const std::vector<SpaceFeature> candidates = MakeCandidates(space, 3, 21);

  ml::TaskEvaluator reference(QuickEvaluator());
  ml::TaskEvaluator evaluator(QuickEvaluator());
  EvalService service(&evaluator);
  for (const SpaceFeature& candidate : candidates) {
    const double expected =
        EvaluateCandidateGain(reference, space, candidate, 0.25)
            .ValueOrDie();
    const double actual =
        service.EvaluateGain(space, candidate, 0.25).ValueOrDie();
    EXPECT_EQ(actual, expected);  // Bit-identical, not just close.
  }
}

TEST_F(EvalServiceTest, CacheHitAndMissAccounting) {
  runtime::SetGlobalThreads(1);
  const data::Dataset dataset = SmallTarget();
  FeatureSpace space(dataset, {});
  const SpaceFeature candidate = MakeCandidates(space, 1, 3).front();

  ml::TaskEvaluator evaluator(QuickEvaluator());
  EvalService service(&evaluator);
  const double first =
      service.EvaluateGain(space, candidate, 0.0).ValueOrDie();
  const double second =
      service.EvaluateGain(space, candidate, 0.0).ValueOrDie();
  EXPECT_EQ(first, second);
  EXPECT_EQ(service.requests(), 2u);
  EXPECT_EQ(service.cache_hits(), 1u);
  // One model fit happened...
  EXPECT_EQ(service.cache().stats().insertions, 1u);
  // ...but the accounting matches the cache-free serial path.
  EXPECT_EQ(evaluator.evaluation_count(), 2u);
}

TEST_F(EvalServiceTest, BatchDeduplicatesIdenticalCandidates) {
  runtime::SetGlobalThreads(1);
  const data::Dataset dataset = SmallTarget();
  FeatureSpace space(dataset, {});
  const std::vector<SpaceFeature> unique = MakeCandidates(space, 2, 7);
  // a, b, a, a: one fit for a, one for b.
  const std::vector<SpaceFeature> batch = {unique[0], unique[1], unique[0],
                                           unique[0]};

  ml::TaskEvaluator evaluator(QuickEvaluator());
  EvalService service(&evaluator);
  const std::vector<EvalService::Outcome> outcomes =
      service.EvaluateBatch(space, batch, 0.0).ValueOrDie();
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(outcomes[0].signature, outcomes[2].signature);
  EXPECT_EQ(outcomes[0].score, outcomes[2].score);
  EXPECT_EQ(outcomes[0].score, outcomes[3].score);
  EXPECT_NE(outcomes[0].signature, outcomes[1].signature);
  EXPECT_FALSE(outcomes[0].cache_hit);
  EXPECT_TRUE(outcomes[2].cache_hit);
  EXPECT_TRUE(outcomes[3].cache_hit);
  EXPECT_EQ(service.cache().stats().insertions, 2u);
  EXPECT_EQ(evaluator.evaluation_count(), 4u);  // Requests, not fits.
}

TEST_F(EvalServiceTest, SignatureTracksStateAndCandidate) {
  const data::Dataset dataset = SmallTarget();
  FeatureSpace space(dataset, {});
  const std::vector<SpaceFeature> candidates = MakeCandidates(space, 2, 13);
  const ml::EvaluatorOptions options = QuickEvaluator();

  const auto signature = [&](const SpaceFeature& candidate,
                             const ml::EvaluatorOptions& opts) {
    return EvaluationSignature(
        BuildCandidateDataset(space, candidate).ValueOrDie(), opts);
  };
  // Same request -> same signature; different candidate or different
  // evaluator settings -> different signature.
  EXPECT_EQ(signature(candidates[0], options),
            signature(candidates[0], options));
  EXPECT_NE(signature(candidates[0], options),
            signature(candidates[1], options));
  ml::EvaluatorOptions other_seed = options;
  other_seed.seed += 1;
  EXPECT_NE(signature(candidates[0], options),
            signature(candidates[0], other_seed));
}

TEST_F(EvalServiceTest, ParallelBatchMatchesSerialBitForBit) {
  const data::Dataset dataset = SmallTarget();
  FeatureSpace space(dataset, {});
  const std::vector<SpaceFeature> candidates = MakeCandidates(space, 8, 31);

  runtime::SetGlobalThreads(1);
  ml::TaskEvaluator serial_evaluator(QuickEvaluator());
  EvalService serial(&serial_evaluator);
  const std::vector<EvalService::Outcome> serial_outcomes =
      serial.EvaluateBatch(space, candidates, 0.5).ValueOrDie();

  runtime::SetGlobalThreads(4);
  ml::TaskEvaluator parallel_evaluator(QuickEvaluator());
  EvalService parallel(&parallel_evaluator);
  const std::vector<EvalService::Outcome> parallel_outcomes =
      parallel.EvaluateBatch(space, candidates, 0.5).ValueOrDie();

  ASSERT_EQ(serial_outcomes.size(), parallel_outcomes.size());
  for (size_t i = 0; i < serial_outcomes.size(); ++i) {
    EXPECT_EQ(serial_outcomes[i].score, parallel_outcomes[i].score);
    EXPECT_EQ(serial_outcomes[i].gain, parallel_outcomes[i].gain);
    EXPECT_EQ(serial_outcomes[i].signature, parallel_outcomes[i].signature);
  }
  // Repeated parallel runs are identical to each other, too.
  ml::TaskEvaluator repeat_evaluator(QuickEvaluator());
  EvalService repeat(&repeat_evaluator);
  const std::vector<EvalService::Outcome> repeat_outcomes =
      repeat.EvaluateBatch(space, candidates, 0.5).ValueOrDie();
  for (size_t i = 0; i < serial_outcomes.size(); ++i) {
    EXPECT_EQ(parallel_outcomes[i].score, repeat_outcomes[i].score);
  }
}

TEST_F(EvalServiceTest, SearchIsIdenticalAcrossThreadCounts) {
  // End-to-end determinism: a whole NFS run at --threads=1 and at
  // --threads=4 must produce the same scores, counts, and kept features.
  const data::Dataset dataset = SmallTarget();
  SearchOptions options;
  options.epochs = 2;
  options.steps_per_agent = 2;
  options.evaluator = QuickEvaluator();
  options.seed = 19;

  runtime::SetGlobalThreads(1);
  const SearchResult serial =
      NfsSearch(options).Run(dataset).ValueOrDie();
  runtime::SetGlobalThreads(4);
  const SearchResult parallel =
      NfsSearch(options).Run(dataset).ValueOrDie();

  EXPECT_EQ(serial.base_score, parallel.base_score);
  EXPECT_EQ(serial.best_score, parallel.best_score);
  EXPECT_EQ(serial.search_score, parallel.search_score);
  EXPECT_EQ(serial.features_generated, parallel.features_generated);
  EXPECT_EQ(serial.features_evaluated, parallel.features_evaluated);
  EXPECT_EQ(serial.features_kept, parallel.features_kept);
  EXPECT_EQ(serial.downstream_evaluations, parallel.downstream_evaluations);
  EXPECT_EQ(serial.best_dataset.features.ColumnNames(),
            parallel.best_dataset.features.ColumnNames());
}

TEST_F(EvalServiceTest, ScoreDatasetUsesCache) {
  runtime::SetGlobalThreads(1);
  const data::Dataset dataset = SmallTarget();
  ml::TaskEvaluator evaluator(QuickEvaluator());
  EvalService service(&evaluator);
  const double first = service.ScoreDataset(dataset).ValueOrDie();
  const double second = service.ScoreDataset(dataset).ValueOrDie();
  EXPECT_EQ(first, second);
  EXPECT_EQ(service.cache_hits(), 1u);
  EXPECT_EQ(evaluator.evaluation_count(), 2u);
}

}  // namespace
}  // namespace eafe::afe
