#include "afe/search.h"

#include <gtest/gtest.h>

#include "afe/nfs.h"
#include "afe/random_search.h"
#include "data/registry.h"
#include "runtime/thread_pool.h"

namespace eafe::afe {
namespace {

data::Dataset SmallTarget() {
  data::MaterializeOptions options;
  options.max_samples = 200;
  options.max_features = 6;
  return data::MakeTargetDatasetByName("PimaIndian", options).ValueOrDie();
}

SearchOptions QuickSearch() {
  SearchOptions options;
  options.epochs = 3;
  options.steps_per_agent = 2;
  options.evaluator.cv_folds = 3;
  options.evaluator.rf_trees = 5;
  options.evaluator.rf_max_depth = 4;
  options.seed = 11;
  return options;
}

TEST(BuildAgentStateTest, EncodesLastActionOneHot) {
  const auto state = BuildAgentState(3, 0.25, 4, 0.5);
  ASSERT_EQ(state.size(), kAgentStateDim);
  for (size_t i = 0; i < kNumOperators; ++i) {
    EXPECT_DOUBLE_EQ(state[i], i == 3 ? 1.0 : 0.0);
  }
  EXPECT_DOUBLE_EQ(state[kNumOperators], 0.5);      // 4 / 8.
  EXPECT_DOUBLE_EQ(state[kNumOperators + 1], 0.25);
  EXPECT_DOUBLE_EQ(state[kNumOperators + 2], 0.5);
}

TEST(BuildAgentStateTest, NoLastActionIsAllZeroOneHot) {
  const auto state = BuildAgentState(-1, 0.0, 1, 0.0);
  for (size_t i = 0; i < kNumOperators; ++i) {
    EXPECT_DOUBLE_EQ(state[i], 0.0);
  }
}

TEST(EvaluateCandidateGainTest, ReportsScoreDelta) {
  const data::Dataset dataset = SmallTarget();
  ml::TaskEvaluator evaluator(QuickSearch().evaluator);
  FeatureSpace::Options space_options;
  FeatureSpace space(dataset, space_options);
  const double base = evaluator.Score(dataset).ValueOrDie();

  Rng rng(3);
  const FeatureSpace::Action action =
      space.MakeAction(0, Operator::kMultiply, &rng);
  const SpaceFeature candidate =
      space.GenerateCandidate(action).ValueOrDie();
  const size_t evals_before = evaluator.evaluation_count();
  const double gain =
      EvaluateCandidateGain(evaluator, space, candidate, base)
          .ValueOrDie();
  EXPECT_EQ(evaluator.evaluation_count(), evals_before + 1);
  EXPECT_GE(gain, -1.0);
  EXPECT_LE(gain, 1.0);
}

TEST(RandomSearchTest, RunsAndImprovesOrMatchesBase) {
  RandomSearch search(QuickSearch());
  const SearchResult result = search.Run(SmallTarget()).ValueOrDie();
  EXPECT_EQ(result.method, "AutoFS_R");
  EXPECT_GE(result.best_score, result.base_score - 0.02);  // Honest re-scoring can dip slightly.
  EXPECT_GE(result.search_score, result.base_score - 1e-9);
  EXPECT_EQ(result.curve.size(), 3u);
  EXPECT_GT(result.downstream_evaluations, 0u);
  EXPECT_GE(result.features_generated, result.features_kept);
  EXPECT_TRUE(result.best_dataset.Validate().ok());
  EXPECT_GE(result.best_dataset.num_features(),
            SmallTarget().num_features());
}

TEST(RandomSearchTest, DeterministicGivenSeed) {
  RandomSearch a(QuickSearch());
  RandomSearch b(QuickSearch());
  const SearchResult ra = a.Run(SmallTarget()).ValueOrDie();
  const SearchResult rb = b.Run(SmallTarget()).ValueOrDie();
  EXPECT_DOUBLE_EQ(ra.best_score, rb.best_score);
  EXPECT_EQ(ra.downstream_evaluations, rb.downstream_evaluations);
}

TEST(NfsSearchTest, RunsAndTracksAccounting) {
  NfsSearch search(QuickSearch());
  const SearchResult result = search.Run(SmallTarget()).ValueOrDie();
  EXPECT_EQ(result.method, "NFS");
  EXPECT_GE(result.best_score, result.base_score - 0.02);  // Honest re-scoring can dip slightly.
  EXPECT_GE(result.search_score, result.base_score - 1e-9);
  // +1 for the base evaluation.
  EXPECT_EQ(result.downstream_evaluations, result.features_evaluated + 1);
  EXPECT_EQ(result.curve.size(), 3u);
  // Curve is monotone in best score.
  for (size_t i = 1; i < result.curve.size(); ++i) {
    EXPECT_GE(result.curve[i].best_score, result.curve[i - 1].best_score);
    EXPECT_GE(result.curve[i].cumulative_evaluations,
              result.curve[i - 1].cumulative_evaluations);
  }
}

TEST(NfsSearchTest, EvaluatesEveryGeneratedCandidate) {
  // The defining inefficiency of NFS (Table I): no pre-filtering.
  NfsSearch search(QuickSearch());
  const SearchResult result = search.Run(SmallTarget()).ValueOrDie();
  EXPECT_EQ(result.features_generated, result.features_evaluated);
}

TEST(NfsSearchTest, RejectsInvalidDataset) {
  NfsSearch search(QuickSearch());
  data::Dataset bad;
  EXPECT_FALSE(search.Run(bad).ok());
}

TEST(SearchOptionsTest, TimingFieldsPopulated) {
  NfsSearch search(QuickSearch());
  const SearchResult result = search.Run(SmallTarget()).ValueOrDie();
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GT(result.evaluation_seconds, 0.0);
  // evaluation_seconds is cumulative across pipeline workers, so with
  // overlapping evaluations it can exceed the wall clock — but never by
  // more than the worker count.
  EXPECT_GE(result.total_seconds * static_cast<double>(
                                       runtime::GlobalThreads()),
            result.evaluation_seconds * 0.5);
}

}  // namespace
}  // namespace eafe::afe
