#include "afe/feature_space.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace eafe::afe {
namespace {

data::Dataset MakeBase() {
  data::Dataset dataset;
  dataset.name = "base";
  dataset.task = data::TaskType::kClassification;
  EXPECT_TRUE(dataset.features.AddColumn(
      data::Column("f0", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10})).ok());
  EXPECT_TRUE(dataset.features.AddColumn(
      data::Column("f1", {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})).ok());
  dataset.labels = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  return dataset;
}

FeatureSpace::Options DefaultOptions() {
  FeatureSpace::Options options;
  options.max_order = 3;
  options.max_generated_per_group = 4;
  return options;
}

TEST(FeatureSpaceTest, InitialStateIsOriginalFeatures) {
  FeatureSpace space(MakeBase(), DefaultOptions());
  EXPECT_EQ(space.num_groups(), 2u);
  EXPECT_EQ(space.group(0).size(), 1u);
  EXPECT_EQ(space.group(0)[0].order, 0u);
  EXPECT_EQ(space.num_generated(), 0u);
  const data::Dataset current = space.ToDataset();
  EXPECT_EQ(current.num_features(), 2u);
}

TEST(FeatureSpaceTest, GenerateAndAcceptExpandsState) {
  FeatureSpace space(MakeBase(), DefaultOptions());
  FeatureSpace::Action action;
  action.group = 0;
  action.op = Operator::kLog;
  action.input_a = 0;
  action.input_b_group = 0;
  action.input_b = 0;
  SpaceFeature feature = space.GenerateCandidate(action).ValueOrDie();
  EXPECT_EQ(feature.order, 1u);
  EXPECT_EQ(feature.column.name(), "log(f0)");
  ASSERT_TRUE(space.Accept(0, std::move(feature)).ok());
  EXPECT_EQ(space.group(0).size(), 2u);
  EXPECT_EQ(space.num_generated(), 1u);
  EXPECT_TRUE(space.Contains(0, "log(f0)"));
  EXPECT_EQ(space.ToDataset().num_features(), 3u);
}

TEST(FeatureSpaceTest, CrossGroupBinaryOperand) {
  FeatureSpace space(MakeBase(), DefaultOptions());
  FeatureSpace::Action action;
  action.group = 0;
  action.op = Operator::kMultiply;
  action.input_a = 0;
  action.input_b_group = 1;
  action.input_b = 0;
  const SpaceFeature feature =
      space.GenerateCandidate(action).ValueOrDie();
  EXPECT_EQ(feature.column.name(), "(f0*f1)");
  EXPECT_DOUBLE_EQ(feature.column[1], 8.0);  // 2 * 4.
}

TEST(FeatureSpaceTest, DuplicateRejected) {
  FeatureSpace space(MakeBase(), DefaultOptions());
  FeatureSpace::Action action;
  action.group = 0;
  action.op = Operator::kSqrt;
  action.input_a = 0;
  action.input_b_group = 0;
  action.input_b = 0;
  ASSERT_TRUE(space.Accept(
      0, space.GenerateCandidate(action).ValueOrDie()).ok());
  const auto again = space.GenerateCandidate(action);
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST(FeatureSpaceTest, MaxOrderEnforced) {
  FeatureSpace::Options options = DefaultOptions();
  options.max_order = 1;
  FeatureSpace space(MakeBase(), options);
  FeatureSpace::Action action;
  action.group = 0;
  action.op = Operator::kLog;
  action.input_a = 0;
  action.input_b_group = 0;
  action.input_b = 0;
  ASSERT_TRUE(space.Accept(
      0, space.GenerateCandidate(action).ValueOrDie()).ok());
  // Transforming the order-1 feature would exceed max_order = 1.
  action.op = Operator::kSqrt;
  action.input_a = 1;
  action.input_b = 1;
  EXPECT_EQ(space.GenerateCandidate(action).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(FeatureSpaceTest, GroupCapacityEnforced) {
  FeatureSpace::Options options = DefaultOptions();
  options.max_generated_per_group = 1;
  FeatureSpace space(MakeBase(), options);
  FeatureSpace::Action action;
  action.group = 0;
  action.op = Operator::kLog;
  action.input_a = 0;
  action.input_b_group = 0;
  action.input_b = 0;
  ASSERT_TRUE(space.Accept(
      0, space.GenerateCandidate(action).ValueOrDie()).ok());
  action.op = Operator::kSqrt;
  SpaceFeature second = space.GenerateCandidate(action).ValueOrDie();
  EXPECT_EQ(space.Accept(0, std::move(second)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FeatureSpaceTest, ConstantCandidateRejected) {
  FeatureSpace space(MakeBase(), DefaultOptions());
  FeatureSpace::Action action;
  action.group = 0;
  action.op = Operator::kSubtract;  // f0 - f0 == 0 everywhere.
  action.input_a = 0;
  action.input_b_group = 0;
  action.input_b = 0;
  EXPECT_EQ(space.GenerateCandidate(action).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(FeatureSpaceTest, UnaryRequiresSameOperand) {
  FeatureSpace space(MakeBase(), DefaultOptions());
  FeatureSpace::Action action;
  action.group = 0;
  action.op = Operator::kLog;
  action.input_a = 0;
  action.input_b_group = 1;
  action.input_b = 0;
  EXPECT_EQ(space.GenerateCandidate(action).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FeatureSpaceTest, OutOfRangeActionRejected) {
  FeatureSpace space(MakeBase(), DefaultOptions());
  FeatureSpace::Action action;
  action.group = 9;
  EXPECT_EQ(space.GenerateCandidate(action).status().code(),
            StatusCode::kOutOfRange);
  action.group = 0;
  action.input_a = 5;
  action.input_b_group = 0;
  action.input_b = 5;
  EXPECT_EQ(space.GenerateCandidate(action).status().code(),
            StatusCode::kOutOfRange);
}

TEST(FeatureSpaceTest, SampledActionsAreValid) {
  FeatureSpace space(MakeBase(), DefaultOptions());
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const FeatureSpace::Action action = space.SampleRandomAction(0, &rng);
    EXPECT_EQ(action.group, 0u);
    EXPECT_LT(action.input_a, space.group(0).size());
    EXPECT_LT(action.input_b_group, space.num_groups());
    if (IsUnary(action.op)) {
      EXPECT_EQ(action.input_b, action.input_a);
      EXPECT_EQ(action.input_b_group, action.group);
    }
  }
}

TEST(FeatureSpaceTest, ToDatasetDeduplicatesNameCollisions) {
  // minmax(f0) accepted into both groups produces a name collision that
  // ToDataset must resolve by suffixing, not by dropping.
  FeatureSpace space(MakeBase(), DefaultOptions());
  FeatureSpace::Action action;
  action.op = Operator::kMinMaxNormalize;
  action.input_a = 0;
  action.input_b = 0;
  action.group = 0;
  action.input_b_group = 0;
  ASSERT_TRUE(space.Accept(
      0, space.GenerateCandidate(action).ValueOrDie()).ok());
  // Manually craft the same-named feature in group 1.
  SpaceFeature clone;
  clone.column = space.group(0)[1].column;
  clone.order = 1;
  ASSERT_TRUE(space.Accept(1, std::move(clone)).ok());
  const data::Dataset dataset = space.ToDataset();
  EXPECT_EQ(dataset.num_features(), 4u);
}

TEST(FeatureSpaceTest, ToDatasetPreservesLabelsAndTask) {
  const data::Dataset base = MakeBase();
  FeatureSpace space(base, DefaultOptions());
  const data::Dataset current = space.ToDataset();
  EXPECT_EQ(current.labels, base.labels);
  EXPECT_EQ(current.task, base.task);
  EXPECT_EQ(current.name, base.name);
}

}  // namespace
}  // namespace eafe::afe
