#include "afe/replay_buffer.h"

#include <gtest/gtest.h>

namespace eafe::afe {
namespace {

ReplayEntry Entry(Operator op, double probability) {
  ReplayEntry entry;
  entry.op = op;
  entry.fpe_probability = probability;
  entry.feature_name = OperatorToString(op);
  return entry;
}

TEST(ReplayBufferTest, AddAndSize) {
  ReplayBuffer buffer(4);
  EXPECT_TRUE(buffer.empty());
  buffer.Add(Entry(Operator::kLog, 0.9));
  buffer.Add(Entry(Operator::kSqrt, 0.8));
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.capacity(), 4u);
}

TEST(ReplayBufferTest, EvictsWeakestWhenFull) {
  ReplayBuffer buffer(2);
  buffer.Add(Entry(Operator::kLog, 0.9));
  buffer.Add(Entry(Operator::kSqrt, 0.3));
  buffer.Add(Entry(Operator::kMultiply, 0.7));  // Evicts 0.3.
  EXPECT_EQ(buffer.size(), 2u);
  for (const ReplayEntry& e : buffer.entries()) {
    EXPECT_NE(e.op, Operator::kSqrt);
  }
}

TEST(ReplayBufferTest, WeakerEntrySkippedWhenFull) {
  ReplayBuffer buffer(2);
  buffer.Add(Entry(Operator::kLog, 0.9));
  buffer.Add(Entry(Operator::kSqrt, 0.8));
  buffer.Add(Entry(Operator::kModulo, 0.1));  // Weaker than everything.
  EXPECT_EQ(buffer.size(), 2u);
  for (const ReplayEntry& e : buffer.entries()) {
    EXPECT_NE(e.op, Operator::kModulo);
  }
}

TEST(ReplayBufferTest, SampleReturnsStoredEntries) {
  ReplayBuffer buffer(8);
  buffer.Add(Entry(Operator::kAdd, 0.6));
  buffer.Add(Entry(Operator::kDivide, 0.7));
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const ReplayEntry& e = buffer.Sample(&rng);
    EXPECT_TRUE(e.op == Operator::kAdd || e.op == Operator::kDivide);
  }
}

TEST(ReplayBufferTest, OperatorHistogram) {
  ReplayBuffer buffer(8);
  buffer.Add(Entry(Operator::kMultiply, 0.9));
  buffer.Add(Entry(Operator::kMultiply, 0.8));
  buffer.Add(Entry(Operator::kLog, 0.7));
  const auto histogram = buffer.OperatorHistogram();
  ASSERT_EQ(histogram.size(), kNumOperators);
  EXPECT_EQ(histogram[static_cast<size_t>(Operator::kMultiply)], 2u);
  EXPECT_EQ(histogram[static_cast<size_t>(Operator::kLog)], 1u);
  EXPECT_EQ(histogram[static_cast<size_t>(Operator::kModulo)], 0u);
}

TEST(ReplayBufferTest, ClearEmpties) {
  ReplayBuffer buffer(4);
  buffer.Add(Entry(Operator::kLog, 0.5));
  buffer.Clear();
  EXPECT_TRUE(buffer.empty());
}

}  // namespace
}  // namespace eafe::afe
