// Sync-vs-async equivalence sweep for the pipelined search (DESIGN.md
// §12): for every driver, --pipeline=async must produce bit-identical
// results to the synchronous oracle at any thread count. The sweep runs
// threads in {1, 4, 16}; the global pool is rebuilt per point, and the
// suite restores the serial default afterwards so other tests are
// unaffected.

#include "afe/search_pipeline.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "afe/eafe.h"
#include "afe/fpe_pretraining.h"
#include "afe/nfs.h"
#include "afe/random_search.h"
#include "afe/search.h"
#include "core/check.h"
#include "data/registry.h"
#include "data/synthetic.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"

namespace eafe::afe {
namespace {

data::Dataset SmallTarget() {
  data::MaterializeOptions options;
  options.max_samples = 150;
  options.max_features = 5;
  return data::MakeTargetDatasetByName("PimaIndian", options).ValueOrDie();
}

SearchOptions QuickSearch(PipelineMode mode) {
  SearchOptions options;
  options.epochs = 2;
  options.steps_per_agent = 2;
  options.evaluator.cv_folds = 3;
  options.evaluator.rf_trees = 4;
  options.evaluator.rf_max_depth = 3;
  options.seed = 33;
  options.pipeline = mode;
  options.pipeline_queue_capacity = 2;  // Tiny bound: exercise backpressure.
  return options;
}

/// Shared FPE model for the E-AFE points (training is the slow part).
const fpe::FpeTrainingResult& SharedFpe() {
  static const auto* kResult = [] {
    FpePretrainingOptions options;
    options.trainer.dimensions = {16};
    options.trainer.schemes = {hashing::MinHashScheme::kCcws};
    options.trainer.evaluator.cv_folds = 3;
    options.trainer.evaluator.rf_trees = 4;
    options.trainer.evaluator.rf_max_depth = 3;
    options.generated_per_dataset = 6;
    auto result =
        PretrainFpe(data::MakePublicCollection(4, 0.6, 91), options);
    EAFE_CHECK(result.ok());
    return new fpe::FpeTrainingResult(std::move(result).ValueOrDie());
  }();
  return *kResult;
}

SearchResult RunMethod(const std::string& method, PipelineMode mode,
                       size_t threads) {
  runtime::SetGlobalThreads(threads);
  SearchResult result;
  if (method == "random") {
    RandomSearch search(QuickSearch(mode));
    result = search.Run(SmallTarget()).ValueOrDie();
  } else if (method == "nfs") {
    NfsSearch search(QuickSearch(mode));
    result = search.Run(SmallTarget()).ValueOrDie();
  } else if (method == "eafe_d") {
    EafeSearch::Options options;
    options.search = QuickSearch(mode);
    options.variant = EafeSearch::Variant::kRandomDrop;
    options.max_generation_attempts = 2;
    EafeSearch search(options);
    result = search.Run(SmallTarget()).ValueOrDie();
  } else {
    EafeSearch::Options options;
    options.search = QuickSearch(mode);
    options.fpe_model = &SharedFpe().model;
    options.stage1_epochs = 2;
    options.max_generation_attempts = 2;
    EafeSearch search(options);
    result = search.Run(SmallTarget()).ValueOrDie();
  }
  runtime::SetGlobalThreads(1);  // Restore the serial default.
  return result;
}

/// Everything except timing and cache-hit counts must match bit for
/// bit. eval_cache_hits is excluded by contract: two async workers can
/// both miss on the same signature that the serial order would have
/// served from cache — scores are unaffected because evaluation is
/// pure.
void ExpectBitIdentical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.base_score, b.base_score);
  EXPECT_EQ(a.best_score, b.best_score);
  EXPECT_EQ(a.search_score, b.search_score);
  EXPECT_EQ(a.downstream_evaluations, b.downstream_evaluations);
  EXPECT_EQ(a.features_generated, b.features_generated);
  EXPECT_EQ(a.features_evaluated, b.features_evaluated);
  EXPECT_EQ(a.features_kept, b.features_kept);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].best_score, b.curve[i].best_score);
    EXPECT_EQ(a.curve[i].cumulative_evaluations,
              b.curve[i].cumulative_evaluations);
  }
  ASSERT_EQ(a.best_dataset.num_features(), b.best_dataset.num_features());
  const auto& cols_a = a.best_dataset.features.columns();
  const auto& cols_b = b.best_dataset.features.columns();
  for (size_t c = 0; c < cols_a.size(); ++c) {
    EXPECT_EQ(cols_a[c].name(), cols_b[c].name());
    EXPECT_EQ(cols_a[c].values(), cols_b[c].values());
  }
}

class SearchPipelineEquivalence
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SearchPipelineEquivalence, AsyncMatchesSyncOracleAtAnyThreads) {
  const std::string method = GetParam();
  const SearchResult oracle = RunMethod(method, PipelineMode::kSync, 1);
  for (size_t threads : {size_t{1}, size_t{4}, size_t{16}}) {
    SCOPED_TRACE(method + " threads=" + std::to_string(threads));
    const SearchResult async = RunMethod(method, PipelineMode::kAsync, threads);
    ExpectBitIdentical(oracle, async);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDrivers, SearchPipelineEquivalence,
                         ::testing::Values("random", "nfs", "eafe_d",
                                           "eafe_full"));

TEST(SearchPipelineTest, SyncOracleIsThreadInvariant) {
  // The oracle itself must not depend on --threads (PR 1 contract:
  // EvalService fan-out reduces in request order).
  const SearchResult at1 = RunMethod("nfs", PipelineMode::kSync, 1);
  const SearchResult at4 = RunMethod("nfs", PipelineMode::kSync, 4);
  ExpectBitIdentical(at1, at4);
}

TEST(SearchPipelineTest, AsyncRunPublishesQueueGauges) {
  // Queue instruments are registered only when the stages actually run
  // on the pool — their presence is how an operator confirms overlap
  // is live (README troubleshooting note).
  runtime::TextMetricGateway gateway;
  runtime::SetGlobalMetrics(&gateway);
  const SearchResult result = RunMethod("nfs", PipelineMode::kAsync, 4);
  runtime::SetGlobalMetrics(nullptr);
  EXPECT_GT(result.features_generated, 0u);
  const std::string exposition = gateway.TextExposition();
  EXPECT_NE(exposition.find("eafe_pipeline_filter_queue_depth"),
            std::string::npos);
  EXPECT_NE(exposition.find("eafe_pipeline_eval_queue_depth"),
            std::string::npos);
  EXPECT_NE(exposition.find("eafe_pipeline_eval_items_total"),
            std::string::npos);
  EXPECT_NE(exposition.find("eafe_pipeline_eval_busy_workers"),
            std::string::npos);
}

TEST(SearchPipelineTest, StepPipelineReordersAndFiltersDirectly) {
  // Unit-level: submit tasks whose eval cost is uneven and check
  // Finish() returns submission order with the right stages applied.
  data::Dataset dataset = SmallTarget();
  FeatureSpace::Options space_options;
  FeatureSpace space(dataset, space_options);
  ml::EvaluatorOptions evaluator_options;
  evaluator_options.cv_folds = 3;
  evaluator_options.rf_trees = 4;
  evaluator_options.rf_max_depth = 3;
  ml::TaskEvaluator evaluator(evaluator_options);
  EvalService eval_service(&evaluator);

  StepPipelineConfig config;
  config.mode = PipelineMode::kAsync;
  config.queue_capacity = 2;
  config.filter = StepFilter::kRandomDrop;

  runtime::SetGlobalThreads(4);
  {
    SearchStepPipeline pipeline(config, &space, &eval_service);
    Rng rng(7);
    for (size_t i = 0; i < 6; ++i) {
      StepTask task;
      task.group = i % space.num_groups();
      task.accept_group = task.group;
      StepAttempt attempt;
      attempt.action_index = i;
      auto candidate = space.GenerateCandidate(
          space.SampleRandomAction(task.group, &rng));
      if (candidate.ok()) {
        attempt.generated = true;
        attempt.candidate = std::move(candidate).ValueOrDie();
        attempt.forced_verdict = i % 2 == 0;  // Half pass the filter.
      }
      task.attempts.push_back(std::move(attempt));
      pipeline.Submit(std::move(task));
    }
    const std::vector<StepTask> tasks = pipeline.Finish().ValueOrDie();
    ASSERT_EQ(tasks.size(), 6u);
    for (size_t i = 0; i < tasks.size(); ++i) {
      EXPECT_EQ(tasks[i].attempts.front().action_index, i);  // Order kept.
      const StepAttempt& attempt = tasks[i].attempts.front();
      if (attempt.generated && attempt.forced_verdict) {
        EXPECT_EQ(tasks[i].chosen, 0);
        EXPECT_TRUE(tasks[i].evaluated);
        EXPECT_TRUE(tasks[i].status.ok());
      } else {
        EXPECT_EQ(tasks[i].chosen, -1);
        EXPECT_FALSE(tasks[i].evaluated);
      }
    }
  }
  runtime::SetGlobalThreads(1);
}

}  // namespace
}  // namespace eafe::afe
