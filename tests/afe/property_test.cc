// Property-style tests: invariants that must hold for every operator and
// for searches over hostile inputs, swept with parameterized gtest.

#include <gtest/gtest.h>

#include <cmath>

#include "afe/eafe.h"
#include "afe/nfs.h"
#include "afe/operators.h"
#include "afe/random_search.h"
#include "core/rng.h"
#include "data/registry.h"

namespace eafe::afe {
namespace {

// ---------------------------------------------------------------------
// Operator properties over random inputs.

class OperatorPropertyTest : public ::testing::TestWithParam<Operator> {};

data::Column RandomColumn(const std::string& name, size_t n, Rng* rng) {
  std::vector<double> values(n);
  for (double& v : values) {
    // Mix of scales, signs, zeros, and large magnitudes.
    const double u = rng->Uniform();
    if (u < 0.1) {
      v = 0.0;
    } else if (u < 0.2) {
      v = rng->Normal(0.0, 1e6);
    } else if (u < 0.3) {
      v = rng->Normal(0.0, 1e-6);
    } else {
      v = rng->Normal(0.0, 3.0);
    }
  }
  return data::Column(name, std::move(values));
}

TEST_P(OperatorPropertyTest, TotalOnHostileInputs) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 3);
  for (int trial = 0; trial < 20; ++trial) {
    const data::Column a = RandomColumn("a", 64, &rng);
    const data::Column b =
        IsUnary(GetParam()) ? a : RandomColumn("b", 64, &rng);
    const auto out = ApplyOperator(GetParam(), a, b);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->size(), a.size());
    EXPECT_FALSE(out->HasNonFinite());
  }
}

TEST_P(OperatorPropertyTest, DeterministicPerInput) {
  Rng rng(11);
  const data::Column a = RandomColumn("a", 32, &rng);
  const data::Column b = IsUnary(GetParam()) ? a : RandomColumn("b", 32, &rng);
  const auto first = ApplyOperator(GetParam(), a, b).ValueOrDie();
  const auto second = ApplyOperator(GetParam(), a, b).ValueOrDie();
  EXPECT_TRUE(first == second);
}

TEST_P(OperatorPropertyTest, NameReflectsOperands) {
  Rng rng(13);
  const data::Column a = RandomColumn("alpha", 16, &rng);
  const data::Column b =
      IsUnary(GetParam()) ? a : RandomColumn("beta", 16, &rng);
  const auto out = ApplyOperator(GetParam(), a, b).ValueOrDie();
  EXPECT_NE(out.name().find("alpha"), std::string::npos);
  if (!IsUnary(GetParam())) {
    EXPECT_NE(out.name().find("beta"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, OperatorPropertyTest, ::testing::ValuesIn(AllOperators()),
    [](const ::testing::TestParamInfo<Operator>& param_info) {
      return OperatorToString(param_info.param);
    });

// Specific algebraic identities (spot checks with exact values).
TEST(OperatorAlgebraTest, MinMaxIsIdempotentOnUnitInterval) {
  data::Column c("c", {0.0, 0.25, 0.5, 1.0});
  const auto once =
      ApplyOperator(Operator::kMinMaxNormalize, c, c).ValueOrDie();
  data::Column renamed = once;
  renamed.set_name("c");
  const auto twice =
      ApplyOperator(Operator::kMinMaxNormalize, renamed, renamed)
          .ValueOrDie();
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_DOUBLE_EQ(once[i], twice[i]);
  }
}

TEST(OperatorAlgebraTest, AddSubtractInverse) {
  Rng rng(17);
  data::Column a = RandomColumn("a", 40, &rng);
  data::Column b = RandomColumn("b", 40, &rng);
  const auto sum = ApplyOperator(Operator::kAdd, a, b).ValueOrDie();
  const auto back = ApplyOperator(Operator::kSubtract, sum, b).ValueOrDie();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(back[i], a[i], std::fabs(a[i]) * 1e-9 + 1e-9);
  }
}

// ---------------------------------------------------------------------
// Search robustness over hostile datasets.

data::Dataset HostileDataset(size_t variant) {
  Rng rng(variant * 31 + 5);
  const size_t n = 120;
  data::Dataset dataset;
  dataset.name = "hostile";
  dataset.task = data::TaskType::kClassification;
  std::vector<double> signal(n);
  for (double& v : signal) v = rng.Normal();
  EXPECT_TRUE(
      dataset.features.AddColumn(data::Column("signal", signal)).ok());
  // Constant column.
  EXPECT_TRUE(dataset.features
                  .AddColumn(data::Column("constant",
                                          std::vector<double>(n, 3.0)))
                  .ok());
  // Binary codes.
  std::vector<double> codes(n);
  for (double& v : codes) v = static_cast<double>(rng.Bernoulli(0.5));
  EXPECT_TRUE(dataset.features.AddColumn(data::Column("codes", codes)).ok());
  // Huge-magnitude column.
  std::vector<double> huge(n);
  for (double& v : huge) v = rng.Normal(0.0, 1e9);
  EXPECT_TRUE(dataset.features.AddColumn(data::Column("huge", huge)).ok());
  dataset.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    dataset.labels[i] = signal[i] > 0.0 ? 1.0 : 0.0;
  }
  return dataset;
}

class SearchRobustnessTest : public ::testing::TestWithParam<int> {};

TEST_P(SearchRobustnessTest, SearchesSurviveHostileData) {
  const data::Dataset dataset = HostileDataset(GetParam());
  SearchOptions options;
  options.epochs = 2;
  options.steps_per_agent = 2;
  options.evaluator.cv_folds = 3;
  options.evaluator.rf_trees = 4;
  options.evaluator.rf_max_depth = 4;
  options.seed = 100 + GetParam();

  RandomSearch random_search(options);
  const auto random_result = random_search.Run(dataset);
  ASSERT_TRUE(random_result.ok()) << random_result.status().ToString();
  EXPECT_TRUE(random_result->best_dataset.Validate().ok());

  NfsSearch nfs(options);
  const auto nfs_result = nfs.Run(dataset);
  ASSERT_TRUE(nfs_result.ok()) << nfs_result.status().ToString();
  EXPECT_TRUE(nfs_result->best_dataset.Validate().ok());

  EafeSearch::Options eafe_options;
  eafe_options.search = options;
  eafe_options.variant = EafeSearch::Variant::kRandomDrop;
  EafeSearch eafe(eafe_options);
  const auto eafe_result = eafe.Run(dataset);
  ASSERT_TRUE(eafe_result.ok()) << eafe_result.status().ToString();
  EXPECT_TRUE(eafe_result->best_dataset.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Variants, SearchRobustnessTest,
                         ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------
// Cross-method invariants.

TEST(SearchInvariantsTest, EvaluationAccountingConsistent) {
  data::MaterializeOptions mat;
  mat.max_samples = 150;
  mat.max_features = 5;
  const data::Dataset dataset =
      data::MakeTargetDatasetByName("diabetes", mat).ValueOrDie();
  SearchOptions options;
  options.epochs = 3;
  options.steps_per_agent = 2;
  options.evaluator.cv_folds = 3;
  options.evaluator.rf_trees = 4;
  options.seed = 9;

  for (int method = 0; method < 2; ++method) {
    std::unique_ptr<FeatureSearch> search;
    if (method == 0) {
      search = std::make_unique<RandomSearch>(options);
    } else {
      search = std::make_unique<NfsSearch>(options);
    }
    const auto result = search->Run(dataset);
    ASSERT_TRUE(result.ok());
    // Evaluations = candidates + 1 base score.
    EXPECT_EQ(result->downstream_evaluations,
              result->features_evaluated + 1);
    // Kept features cannot exceed evaluated candidates.
    EXPECT_LE(result->features_kept, result->features_evaluated);
    // The final dataset has base + kept features.
    EXPECT_EQ(result->best_dataset.num_features(),
              dataset.num_features() + result->features_kept);
  }
}

}  // namespace
}  // namespace eafe::afe
