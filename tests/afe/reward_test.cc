#include "afe/reward.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eafe::afe {
namespace {

TEST(FpeShapedScoreTest, MatchesEquationEight) {
  FpeRewardOptions options;
  options.base_score = 0.7;
  options.delta_max = 0.06;
  options.delta_min = -0.04;
  options.threshold = 0.01;
  // p = 0: full bonus A^O + (delta_max - thre).
  EXPECT_NEAR(FpeShapedScore(0.0, options), 0.7 + 0.05, 1e-12);
  // p = 0.5: exactly A^O (boundary of the two branches).
  EXPECT_NEAR(FpeShapedScore(0.5, options), 0.7, 1e-12);
  // p = 1: full penalty A^O - (thre - delta_min).
  EXPECT_NEAR(FpeShapedScore(1.0, options), 0.7 - 0.05, 1e-12);
  // p = 0.25: halfway into the bonus branch.
  EXPECT_NEAR(FpeShapedScore(0.25, options), 0.7 + 0.025, 1e-12);
}

TEST(FpeShapedScoreTest, MonotoneDecreasingInP) {
  FpeRewardOptions options;
  double previous = FpeShapedScore(0.0, options);
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const double score = FpeShapedScore(p, options);
    EXPECT_LE(score, previous + 1e-12) << p;
    previous = score;
  }
}

TEST(DiscountedReturnsTest, MatchesRecurrence) {
  const std::vector<double> rewards = {1.0, 2.0, 3.0};
  const double gamma = 0.5;
  const auto returns = DiscountedReturns(rewards, gamma);
  // U_2 = 3; U_1 = 2 + 0.5*3 = 3.5; U_0 = 1 + 0.5*3.5 = 2.75.
  EXPECT_DOUBLE_EQ(returns[2], 3.0);
  EXPECT_DOUBLE_EQ(returns[1], 3.5);
  EXPECT_DOUBLE_EQ(returns[0], 2.75);
}

TEST(DiscountedReturnsTest, GammaZeroIsImmediateReward) {
  const std::vector<double> rewards = {1.0, -2.0, 0.5};
  EXPECT_EQ(DiscountedReturns(rewards, 0.0), rewards);
}

TEST(DiscountedReturnsTest, GammaOneIsSuffixSums) {
  const std::vector<double> rewards = {1.0, 2.0, 3.0};
  const auto returns = DiscountedReturns(rewards, 1.0);
  EXPECT_DOUBLE_EQ(returns[0], 6.0);
  EXPECT_DOUBLE_EQ(returns[1], 5.0);
  EXPECT_DOUBLE_EQ(returns[2], 3.0);
}

TEST(DiscountedReturnsTest, EmptyInput) {
  EXPECT_TRUE(DiscountedReturns({}, 0.9).empty());
}

TEST(LambdaReturnsTest, LambdaOneEqualsDiscountedReturns) {
  const std::vector<double> rewards = {0.3, -0.1, 0.7, 0.2};
  const double gamma = 0.9;
  const auto mc = DiscountedReturns(rewards, gamma);
  const auto lambda_returns = LambdaReturns(rewards, gamma, 1.0);
  ASSERT_EQ(lambda_returns.size(), mc.size());
  for (size_t t = 0; t < mc.size(); ++t) {
    EXPECT_NEAR(lambda_returns[t], mc[t], 1e-12) << t;
  }
}

TEST(LambdaReturnsTest, LambdaZeroIsImmediateReward) {
  const std::vector<double> rewards = {0.3, -0.1, 0.7};
  const auto lambda_returns = LambdaReturns(rewards, 0.9, 0.0);
  // With no value function, the 1-step target is just r_t (except the
  // final step, where the full return is also r_T).
  for (size_t t = 0; t < rewards.size(); ++t) {
    EXPECT_NEAR(lambda_returns[t], rewards[t], 1e-12) << t;
  }
}

TEST(LambdaReturnsTest, IntermediateLambdaIsBetweenExtremes) {
  const std::vector<double> rewards = {1.0, 1.0, 1.0, 1.0};
  const double gamma = 1.0;
  const auto low = LambdaReturns(rewards, gamma, 0.0);
  const auto mid = LambdaReturns(rewards, gamma, 0.5);
  const auto high = LambdaReturns(rewards, gamma, 1.0);
  for (size_t t = 0; t + 1 < rewards.size(); ++t) {
    EXPECT_GE(mid[t], low[t] - 1e-12);
    EXPECT_LE(mid[t], high[t] + 1e-12);
  }
}

TEST(LambdaReturnsTest, HandKnownMixture) {
  // T=2, rewards {r0, r1}, gamma=1:
  // U_0^lambda = (1-l) * r0 + l * (r0 + r1); U_1^lambda = r1.
  const std::vector<double> rewards = {2.0, 3.0};
  const double lambda = 0.25;
  const auto returns = LambdaReturns(rewards, 1.0, lambda);
  EXPECT_NEAR(returns[0], 0.75 * 2.0 + 0.25 * 5.0, 1e-12);
  EXPECT_NEAR(returns[1], 3.0, 1e-12);
}

TEST(LambdaReturnsTest, SingleStep) {
  const auto returns = LambdaReturns({0.42}, 0.9, 0.8);
  ASSERT_EQ(returns.size(), 1u);
  EXPECT_DOUBLE_EQ(returns[0], 0.42);
}

}  // namespace
}  // namespace eafe::afe
