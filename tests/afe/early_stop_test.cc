// Early-stopping behaviour shared by all searches: a run whose greedy
// search stops finding features quits after `early_stop_patience` stale
// epochs; patience 0 always runs the full budget.

#include <gtest/gtest.h>

#include "afe/eafe.h"
#include "afe/nfs.h"
#include "afe/random_search.h"
#include "core/rng.h"
#include "data/registry.h"

namespace eafe::afe {
namespace {

/// A dataset where engineered features essentially never help: pure
/// noise columns and random labels, so greedy acceptance stays empty and
/// early stopping must fire.
data::Dataset NoiseDataset() {
  Rng rng(41);
  const size_t n = 80;
  data::Dataset dataset;
  dataset.name = "noise";
  dataset.task = data::TaskType::kClassification;
  for (int f = 0; f < 3; ++f) {
    std::vector<double> values(n);
    for (double& v : values) v = rng.Normal();
    EXPECT_TRUE(dataset.features
                    .AddColumn(data::Column("n" + std::to_string(f),
                                            values))
                    .ok());
  }
  dataset.labels.resize(n);
  for (double& y : dataset.labels) {
    y = rng.Bernoulli(0.5) ? 1.0 : 0.0;
  }
  return dataset;
}

SearchOptions Options(size_t patience) {
  SearchOptions options;
  options.epochs = 10;
  options.steps_per_agent = 2;
  options.evaluator.cv_folds = 3;
  options.evaluator.rf_trees = 4;
  options.evaluator.rf_max_depth = 3;
  options.accept_margin = 0.05;  // Nothing passes on noise.
  options.early_stop_patience = patience;
  options.seed = 77;
  return options;
}

TEST(EarlyStopTest, RandomSearchStopsEarly) {
  RandomSearch search(Options(2));
  const auto result = search.Run(NoiseDataset()).ValueOrDie();
  EXPECT_LE(result.curve.size(), 3u);  // Stops at epoch patience (2).
}

TEST(EarlyStopTest, NfsStopsEarly) {
  NfsSearch search(Options(3));
  const auto result = search.Run(NoiseDataset()).ValueOrDie();
  EXPECT_LE(result.curve.size(), 4u);
}

TEST(EarlyStopTest, EafeRandomDropStopsEarly) {
  EafeSearch::Options options;
  options.search = Options(2);
  options.variant = EafeSearch::Variant::kRandomDrop;
  EafeSearch search(options);
  const auto result = search.Run(NoiseDataset()).ValueOrDie();
  EXPECT_LE(result.curve.size(), 3u);
}

TEST(EarlyStopTest, ZeroPatienceRunsFullBudget) {
  RandomSearch search(Options(0));
  const auto result = search.Run(NoiseDataset()).ValueOrDie();
  EXPECT_EQ(result.curve.size(), 10u);
}

TEST(EarlyStopTest, AcceptingRunsKeepGoing) {
  // On a learnable dataset with a generous margin, acceptances reset the
  // patience clock, so the run lasts longer than the patience window.
  data::MaterializeOptions mat;
  mat.max_samples = 200;
  mat.max_features = 6;
  const data::Dataset dataset =
      data::MakeTargetDatasetByName("credit-a", mat).ValueOrDie();
  SearchOptions options = Options(2);
  options.accept_margin = 0.0;
  RandomSearch search(options);
  const auto result = search.Run(dataset).ValueOrDie();
  if (result.features_kept > 0) {
    EXPECT_GT(result.curve.size(), 2u);
  }
}

}  // namespace
}  // namespace eafe::afe
