#include "afe/agent.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eafe::afe {
namespace {

RnnAgent::Options SmallOptions() {
  RnnAgent::Options options;
  options.input_dim = 4;
  options.hidden_dim = 8;
  options.num_actions = 5;
  options.learning_rate = 0.05;
  options.seed = 7;
  return options;
}

std::vector<double> State(double x) { return {x, 0.5, -0.5, 1.0}; }

TEST(RnnAgentTest, ProbabilitiesAreADistribution) {
  RnnAgent agent(SmallOptions());
  const auto probs = agent.Step(State(0.1));
  ASSERT_EQ(probs.size(), 5u);
  double total = 0.0;
  for (double p : probs) {
    EXPECT_GT(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(RnnAgentTest, InitialPolicyNearUniform) {
  RnnAgent agent(SmallOptions());
  agent.ResetEpisode();
  const auto probs = agent.Step(State(0.0));
  for (double p : probs) EXPECT_NEAR(p, 0.2, 0.05);
}

TEST(RnnAgentTest, RecurrentStateChangesOutput) {
  RnnAgent agent(SmallOptions());
  agent.ResetEpisode();
  const auto first = agent.Step(State(0.3));
  const auto second = agent.Step(State(0.3));  // Same input, new h.
  EXPECT_NE(first, second);
  // After reset, the first step reproduces exactly.
  agent.DiscardRecordedSteps();
  agent.ResetEpisode();
  EXPECT_EQ(agent.Step(State(0.3)), first);
}

TEST(RnnAgentTest, SampleActionFollowsDistribution) {
  RnnAgent agent(SmallOptions());
  Rng rng(3);
  const std::vector<double> probs = {0.0, 0.0, 1.0, 0.0, 0.0};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(agent.SampleAction(probs, &rng), 2u);
  }
}

TEST(RnnAgentTest, PositiveReturnReinforcesAction) {
  RnnAgent agent(SmallOptions());
  constexpr size_t kAction = 3;
  double p_before = 0.0;
  for (int iter = 0; iter < 50; ++iter) {
    agent.ResetEpisode();
    const auto probs = agent.Step(State(0.2));
    if (iter == 0) p_before = probs[kAction];
    agent.Update({kAction}, {1.0});
  }
  agent.ResetEpisode();
  const auto probs = agent.Step(State(0.2));
  EXPECT_GT(probs[kAction], p_before);
  EXPECT_GT(probs[kAction], 0.5);
}

TEST(RnnAgentTest, NegativeReturnSuppressesAction) {
  RnnAgent agent(SmallOptions());
  constexpr size_t kAction = 1;
  double p_before = 0.0;
  for (int iter = 0; iter < 50; ++iter) {
    agent.ResetEpisode();
    const auto probs = agent.Step(State(0.2));
    if (iter == 0) p_before = probs[kAction];
    agent.Update({kAction}, {-1.0});
  }
  agent.ResetEpisode();
  const auto probs = agent.Step(State(0.2));
  EXPECT_LT(probs[kAction], p_before);
}

TEST(RnnAgentTest, ZeroReturnKeepsPolicyRoughlyStable) {
  RnnAgent::Options options = SmallOptions();
  options.entropy_bonus = 0.0;
  options.l2 = 0.0;
  RnnAgent agent(options);
  agent.ResetEpisode();
  const auto before = agent.Step(State(0.2));
  agent.Update({0}, {0.0});
  agent.ResetEpisode();
  const auto after = agent.Step(State(0.2));
  for (size_t a = 0; a < before.size(); ++a) {
    EXPECT_NEAR(before[a], after[a], 1e-9);
  }
}

TEST(RnnAgentTest, MultiStepEpisodeUpdate) {
  RnnAgent agent(SmallOptions());
  agent.ResetEpisode();
  agent.Step(State(0.1));
  agent.Step(State(0.2));
  agent.Step(State(0.3));
  EXPECT_EQ(agent.num_recorded_steps(), 3u);
  agent.Update({0, 1, 2}, {0.5, -0.2, 0.1});
  EXPECT_EQ(agent.num_recorded_steps(), 0u);
}

TEST(RnnAgentTest, DiscardRecordedSteps) {
  RnnAgent agent(SmallOptions());
  agent.Step(State(0.1));
  EXPECT_EQ(agent.num_recorded_steps(), 1u);
  agent.DiscardRecordedSteps();
  EXPECT_EQ(agent.num_recorded_steps(), 0u);
}

TEST(RnnAgentTest, DeterministicGivenSeed) {
  RnnAgent a(SmallOptions()), b(SmallOptions());
  EXPECT_EQ(a.parameters(), b.parameters());
  a.Step(State(0.4));
  b.Step(State(0.4));
  a.Update({2}, {0.7});
  b.Update({2}, {0.7});
  EXPECT_EQ(a.parameters(), b.parameters());
}

TEST(RnnAgentTest, EntropyBonusKeepsDistributionSofter) {
  RnnAgent::Options with = SmallOptions();
  with.entropy_bonus = 0.5;
  RnnAgent::Options without = SmallOptions();
  without.entropy_bonus = 0.0;
  RnnAgent a(with), b(without);
  for (int iter = 0; iter < 80; ++iter) {
    a.ResetEpisode();
    a.Step(State(0.2));
    a.Update({0}, {1.0});
    b.ResetEpisode();
    b.Step(State(0.2));
    b.Update({0}, {1.0});
  }
  a.ResetEpisode();
  b.ResetEpisode();
  const double pa = a.Step(State(0.2))[0];
  const double pb = b.Step(State(0.2))[0];
  EXPECT_LT(pa, pb);  // Entropy bonus resists collapse to determinism.
}

}  // namespace
}  // namespace eafe::afe
