#include "afe/operators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eafe::afe {
namespace {

data::Column Col(std::string name, std::vector<double> values) {
  return data::Column(std::move(name), std::move(values));
}

TEST(OperatorsTest, UnaryBinaryPartition) {
  EXPECT_TRUE(IsUnary(Operator::kLog));
  EXPECT_TRUE(IsUnary(Operator::kMinMaxNormalize));
  EXPECT_TRUE(IsUnary(Operator::kSqrt));
  EXPECT_TRUE(IsUnary(Operator::kReciprocal));
  EXPECT_FALSE(IsUnary(Operator::kAdd));
  EXPECT_FALSE(IsUnary(Operator::kSubtract));
  EXPECT_FALSE(IsUnary(Operator::kMultiply));
  EXPECT_FALSE(IsUnary(Operator::kDivide));
  EXPECT_FALSE(IsUnary(Operator::kModulo));
  EXPECT_EQ(AllOperators().size(), kNumOperators);
}

TEST(OperatorsTest, StringRoundTrip) {
  for (Operator op : AllOperators()) {
    EXPECT_EQ(OperatorFromString(OperatorToString(op)).ValueOrDie(), op);
  }
  EXPECT_FALSE(OperatorFromString("cube").ok());
}

TEST(OperatorsTest, LogIsTotalAndMonotoneInMagnitude) {
  const auto out = ApplyOperator(Operator::kLog, Col("x", {0.0, -1.0, 9.0}),
                                 Col("x", {0.0, -1.0, 9.0}))
                       .ValueOrDie();
  EXPECT_DOUBLE_EQ(out[0], 0.0);                 // log(0+1).
  EXPECT_DOUBLE_EQ(out[1], std::log(2.0));       // log(|-1|+1).
  EXPECT_DOUBLE_EQ(out[2], std::log(10.0));
  EXPECT_EQ(out.name(), "log(x)");
}

TEST(OperatorsTest, MinMaxNormalize) {
  const auto out = ApplyOperator(Operator::kMinMaxNormalize,
                                 Col("x", {2.0, 4.0, 6.0}),
                                 Col("x", {2.0, 4.0, 6.0}))
                       .ValueOrDie();
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(OperatorsTest, MinMaxOfConstantIsZero) {
  const auto out = ApplyOperator(Operator::kMinMaxNormalize,
                                 Col("c", {3.0, 3.0}), Col("c", {3.0, 3.0}))
                       .ValueOrDie();
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(OperatorsTest, SqrtUsesAbsoluteValue) {
  const auto out = ApplyOperator(Operator::kSqrt, Col("x", {4.0, -9.0}),
                                 Col("x", {4.0, -9.0}))
                       .ValueOrDie();
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
}

TEST(OperatorsTest, ReciprocalGuardsZero) {
  const auto out = ApplyOperator(Operator::kReciprocal,
                                 Col("x", {2.0, 0.0, -4.0}),
                                 Col("x", {2.0, 0.0, -4.0}))
                       .ValueOrDie();
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], -0.25);
}

TEST(OperatorsTest, BinaryArithmetic) {
  const data::Column a = Col("a", {6.0, 8.0});
  const data::Column b = Col("b", {3.0, 2.0});
  EXPECT_DOUBLE_EQ(
      ApplyOperator(Operator::kAdd, a, b).ValueOrDie()[0], 9.0);
  EXPECT_DOUBLE_EQ(
      ApplyOperator(Operator::kSubtract, a, b).ValueOrDie()[1], 6.0);
  EXPECT_DOUBLE_EQ(
      ApplyOperator(Operator::kMultiply, a, b).ValueOrDie()[0], 18.0);
  EXPECT_DOUBLE_EQ(
      ApplyOperator(Operator::kDivide, a, b).ValueOrDie()[1], 4.0);
}

TEST(OperatorsTest, DivideGuardsZeroDenominator) {
  const auto out = ApplyOperator(Operator::kDivide, Col("a", {1.0, 2.0}),
                                 Col("b", {0.0, 4.0}))
                       .ValueOrDie();
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
}

TEST(OperatorsTest, ModuloUsesAbsoluteValuesAndGuardsZero) {
  const auto out = ApplyOperator(Operator::kModulo,
                                 Col("a", {7.0, -7.0, 5.0}),
                                 Col("b", {3.0, 3.0, 0.0}))
                       .ValueOrDie();
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);  // |−7| mod 3.
  EXPECT_DOUBLE_EQ(out[2], 0.0);  // Zero divisor.
}

TEST(OperatorsTest, OutputsAlwaysFinite) {
  // Hostile inputs: huge magnitudes and zeros.
  const data::Column a = Col("a", {1e308, -1e308, 0.0, 1e-320});
  const data::Column b = Col("b", {1e-320, 0.0, 1e308, -1e308});
  for (Operator op : AllOperators()) {
    const auto out = ApplyOperator(op, a, IsUnary(op) ? a : b).ValueOrDie();
    EXPECT_FALSE(out.HasNonFinite()) << OperatorToString(op);
  }
}

TEST(OperatorsTest, DerivedNames) {
  EXPECT_EQ(DerivedFeatureName(Operator::kDivide, "f1", "f2"), "(f1/f2)");
  EXPECT_EQ(DerivedFeatureName(Operator::kSqrt, "f1", "f1"), "sqrt(f1)");
  EXPECT_EQ(DerivedFeatureName(Operator::kModulo, "a", "b"), "(a%b)");
}

TEST(OperatorsTest, RejectsBadShapes) {
  EXPECT_FALSE(ApplyOperator(Operator::kAdd, Col("a", {1.0}),
                             Col("b", {1.0, 2.0}))
                   .ok());
  EXPECT_FALSE(
      ApplyOperator(Operator::kLog, Col("a", {}), Col("a", {})).ok());
}

}  // namespace
}  // namespace eafe::afe
