#include "afe/eafe.h"

#include <gtest/gtest.h>

#include "afe/fpe_pretraining.h"
#include "data/registry.h"
#include "data/synthetic.h"

namespace eafe::afe {
namespace {

SearchOptions QuickSearch() {
  SearchOptions options;
  options.epochs = 3;
  options.steps_per_agent = 2;
  options.evaluator.cv_folds = 3;
  options.evaluator.rf_trees = 5;
  options.evaluator.rf_max_depth = 4;
  options.seed = 21;
  return options;
}

data::Dataset SmallTarget() {
  data::MaterializeOptions options;
  options.max_samples = 200;
  options.max_features = 6;
  return data::MakeTargetDatasetByName("credit-a", options).ValueOrDie();
}

/// Shared FPE model (trained once; training is the slow part).
const fpe::FpeTrainingResult& SharedFpe() {
  static const auto* kResult = [] {
    FpePretrainingOptions options;
    options.trainer.dimensions = {16};
    options.trainer.schemes = {hashing::MinHashScheme::kCcws};
    options.trainer.evaluator.cv_folds = 3;
    options.trainer.evaluator.rf_trees = 5;
    options.trainer.evaluator.rf_max_depth = 4;
    options.generated_per_dataset = 8;
    auto result =
        PretrainFpe(data::MakePublicCollection(5, 0.6, 77), options);
    EAFE_CHECK(result.ok());
    return new fpe::FpeTrainingResult(std::move(result).ValueOrDie());
  }();
  return *kResult;
}

TEST(EafeSearchTest, FullVariantRuns) {
  EafeSearch::Options options;
  options.search = QuickSearch();
  options.fpe_model = &SharedFpe().model;
  options.stage1_epochs = 2;
  EafeSearch search(options);
  EXPECT_EQ(search.name(), "E-AFE");
  const SearchResult result = search.Run(SmallTarget()).ValueOrDie();
  EXPECT_GE(result.best_score, result.base_score - 0.02);  // Honest re-scoring can dip slightly.
  EXPECT_GE(result.search_score, result.base_score - 1e-9);
  EXPECT_EQ(result.curve.size(), 3u);
  EXPECT_TRUE(result.best_dataset.Validate().ok());
}

TEST(EafeSearchTest, FilterReducesDownstreamEvaluations) {
  // Core efficiency claim (Table IV): E-AFE evaluates fewer candidates
  // than it generates; with single-attempt semantics the evaluated count
  // is at most the step budget and strictly less than generated+1.
  EafeSearch::Options options;
  options.search = QuickSearch();
  options.search.epochs = 4;
  options.fpe_model = &SharedFpe().model;
  options.stage1_epochs = 1;
  EafeSearch search(options);
  const SearchResult result = search.Run(SmallTarget()).ValueOrDie();
  EXPECT_LT(result.features_evaluated, result.features_generated);
  EXPECT_EQ(result.downstream_evaluations, result.features_evaluated + 1);
}

TEST(EafeSearchTest, Stage1FillsReplayBuffer) {
  EafeSearch::Options options;
  options.search = QuickSearch();
  options.fpe_model = &SharedFpe().model;
  options.stage1_epochs = 4;
  EafeSearch search(options);
  ASSERT_TRUE(search.Run(SmallTarget()).ok());
  // The FPE model passes some candidates, so stage 1 stores actions.
  EXPECT_GT(search.replay_buffer().size(), 0u);
  for (const ReplayEntry& e : search.replay_buffer().entries()) {
    EXPECT_GE(e.fpe_probability, 0.5);
  }
}

TEST(EafeSearchTest, RandomDropVariantNeedsNoModel) {
  EafeSearch::Options options;
  options.search = QuickSearch();
  options.variant = EafeSearch::Variant::kRandomDrop;
  options.random_drop_pass_rate = 0.5;
  EafeSearch search(options);
  EXPECT_EQ(search.name(), "E-AFE_D");
  const SearchResult result = search.Run(SmallTarget()).ValueOrDie();
  EXPECT_GE(result.best_score, result.base_score - 0.02);  // Honest re-scoring can dip slightly.
  EXPECT_GE(result.search_score, result.base_score - 1e-9);
  // Random drop also reduces evaluations vs generation.
  EXPECT_LT(result.features_evaluated, result.features_generated + 1);
}

TEST(EafeSearchTest, PolicyGradientVariantRuns) {
  EafeSearch::Options options;
  options.search = QuickSearch();
  options.variant = EafeSearch::Variant::kPolicyGradient;
  options.fpe_model = &SharedFpe().model;
  EafeSearch search(options);
  EXPECT_EQ(search.name(), "E-AFE_R");
  const SearchResult result = search.Run(SmallTarget()).ValueOrDie();
  EXPECT_GE(result.best_score, result.base_score - 0.02);  // Honest re-scoring can dip slightly.
  EXPECT_GE(result.search_score, result.base_score - 1e-9);
}

TEST(EafeSearchTest, RequiresModelUnlessRandomDrop) {
  EafeSearch::Options options;
  options.search = QuickSearch();
  options.fpe_model = nullptr;
  EXPECT_FALSE(EafeSearch(options).Run(SmallTarget()).ok());
  options.variant = EafeSearch::Variant::kPolicyGradient;
  EXPECT_FALSE(EafeSearch(options).Run(SmallTarget()).ok());
  options.variant = EafeSearch::Variant::kRandomDrop;
  EXPECT_TRUE(EafeSearch(options).Run(SmallTarget()).ok());
}

TEST(EafeSearchTest, RejectsBadDropRate) {
  EafeSearch::Options options;
  options.search = QuickSearch();
  options.variant = EafeSearch::Variant::kRandomDrop;
  options.random_drop_pass_rate = 0.0;
  EXPECT_FALSE(EafeSearch(options).Run(SmallTarget()).ok());
}

TEST(EafeSearchTest, DeterministicGivenSeed) {
  EafeSearch::Options options;
  options.search = QuickSearch();
  options.fpe_model = &SharedFpe().model;
  options.stage1_epochs = 2;
  EafeSearch a(options), b(options);
  const SearchResult ra = a.Run(SmallTarget()).ValueOrDie();
  const SearchResult rb = b.Run(SmallTarget()).ValueOrDie();
  EXPECT_DOUBLE_EQ(ra.best_score, rb.best_score);
  EXPECT_EQ(ra.downstream_evaluations, rb.downstream_evaluations);
}

TEST(EafeSearchTest, MultiAttemptGenerationEvaluatesMore) {
  EafeSearch::Options single;
  single.search = QuickSearch();
  single.fpe_model = &SharedFpe().model;
  single.stage1_epochs = 1;
  single.max_generation_attempts = 1;
  EafeSearch::Options multi = single;
  multi.max_generation_attempts = 4;
  const SearchResult rs =
      EafeSearch(single).Run(SmallTarget()).ValueOrDie();
  const SearchResult rm = EafeSearch(multi).Run(SmallTarget()).ValueOrDie();
  EXPECT_GE(rm.features_evaluated, rs.features_evaluated);
  EXPECT_GE(rm.features_generated, rs.features_generated);
}

TEST(LabelGeneratedCandidatesTest, ProducesLabeledCandidates) {
  ml::EvaluatorOptions eval;
  eval.cv_folds = 3;
  eval.rf_trees = 5;
  eval.rf_max_depth = 4;
  ml::TaskEvaluator evaluator(eval);
  const auto candidates =
      LabelGeneratedCandidates(SmallTarget(), evaluator, 0.01, 10, 2, 5)
          .ValueOrDie();
  EXPECT_GT(candidates.size(), 0u);
  EXPECT_LE(candidates.size(), 10u);
  for (const auto& c : candidates) {
    EXPECT_EQ(c.values.size(), SmallTarget().num_rows());
    EXPECT_EQ(c.label, c.score_gain > 0.01 ? 1 : 0);
  }
}

}  // namespace
}  // namespace eafe::afe
