#include "tools/lint/lint.h"

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace eafe::lint {
namespace {

// Every rule must (a) fire on a known-bad snippet with a pointed message
// and (b) stay quiet on the idiomatic equivalent — the lint suite is only
// trustworthy if both directions are pinned.

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& finding : findings) rules.push_back(finding.rule);
  return rules;
}

TEST(StripCommentsAndStringsTest, ErasesCommentsAndLiteralsKeepingLines) {
  const std::string source =
      "int a; // std::thread in a comment\n"
      "/* rand() in a block\n"
      "   comment */ int b;\n"
      "const char* s = \"std::random_device\";\n"
      "char c = 'r';\n";
  const std::string stripped = StripCommentsAndStrings(source);
  EXPECT_EQ(stripped.find("thread"), std::string::npos);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("random_device"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
  // Line structure is preserved so findings keep real line numbers.
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(source.begin(), source.end(), '\n'));
}

TEST(StripCommentsAndStringsTest, HandlesRawStringsAndDigitSeparators) {
  const std::string source =
      "auto r = R\"(rand() time(nullptr))\";\n"
      "int n = 1'000'000;\n"
      "int m = n;\n";
  const std::string stripped = StripCommentsAndStrings(source);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int m = n;"), std::string::npos);
}

TEST(DeterminismTest, FiresOnEntropyAndWallClockSources) {
  const std::string source =
      "#include <random>\n"
      "int a = rand();\n"
      "std::random_device rd;\n"
      "auto t = std::chrono::system_clock::now();\n"
      "long w = std::time(nullptr);\n";
  const std::vector<Finding> findings = CheckDeterminism("src/ml/x.cc", source);
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[0].rule, kRuleDeterminism);
  EXPECT_NE(findings[0].message.find("eafe::Rng"), std::string::npos);
  EXPECT_EQ(findings[1].line, 3u);
  EXPECT_EQ(findings[2].line, 4u);
  EXPECT_EQ(findings[3].line, 5u);
}

TEST(DeterminismTest, IgnoresLookalikesCommentsAndSteadyClock) {
  const std::string source =
      "// rand() in prose is fine\n"
      "double elapsed = stopwatch.time();\n"
      "double t = elapsed_time(3);\n"
      "auto now = std::chrono::steady_clock::now();\n"
      "int time_budget = 3;\n";
  EXPECT_TRUE(CheckDeterminism("src/ml/x.cc", source).empty());
}

TEST(DeterminismTest, AllowEscapeAndSeedEntryPointAreExempt) {
  const std::string escaped =
      "std::random_device rd;  // eafe-lint: allow(determinism) os seed\n";
  EXPECT_TRUE(CheckDeterminism("src/ml/x.cc", escaped).empty());
  // The escape names a specific rule; other rules still apply.
  EXPECT_TRUE(CheckDeterminism("src/core/rng.cc", "int a = rand();").empty());
}

TEST(RawThreadTest, FiresOutsideRuntime) {
  const std::string source =
      "#include <thread>\n"
      "std::thread t([] {});\n"
      "auto f = std::async([] { return 1; });\n"
      "pthread_create(nullptr, nullptr, nullptr, nullptr);\n";
  const std::vector<Finding> findings = CheckRawThreads("src/afe/x.cc", source);
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].rule, kRuleRawThread);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("runtime::ThreadPool"),
            std::string::npos);
}

TEST(RawThreadTest, RuntimeHardwareConcurrencyAndEscapeAreExempt) {
  EXPECT_TRUE(
      CheckRawThreads("src/runtime/thread_pool.cc", "std::thread t;").empty());
  EXPECT_TRUE(CheckRawThreads(
                  "src/core/flags.cc",
                  "size_t n = std::thread::hardware_concurrency();")
                  .empty());
  EXPECT_TRUE(CheckRawThreads(
                  "src/afe/x.cc",
                  "std::thread t;  // eafe-lint: allow(raw-thread) why\n")
                  .empty());
}

TEST(RawDeserializeTest, FiresOnFreadAndReinterpretCast) {
  const std::string source =
      "#include <cstdio>\n"
      "size_t n = fread(buf, 1, 64, f);\n"
      "const Header* h = reinterpret_cast<const Header*>(bytes.data());\n";
  const std::vector<Finding> findings =
      CheckRawDeserialize("src/fpe/serialization.cc", source);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, kRuleRawDeserialize);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("serve/wire.h"), std::string::npos);
  EXPECT_EQ(findings[1].line, 3u);
}

TEST(RawDeserializeTest, ServeCommentsAndEscapeAreExempt) {
  EXPECT_TRUE(CheckRawDeserialize(
                  "src/serve/wire.cc",
                  "auto* p = reinterpret_cast<const char*>(bytes);")
                  .empty());
  EXPECT_TRUE(CheckRawDeserialize(
                  "src/ml/x.cc", "// fread is banned; reinterpret_cast too\n")
                  .empty());
  EXPECT_TRUE(
      CheckRawDeserialize(
          "src/ml/x.cc",
          "fread(b, 1, 4, f);  // eafe-lint: allow(raw-deserialize) why\n")
          .empty());
  // std::bit_cast is the sanctioned in-process punning tool.
  EXPECT_TRUE(CheckRawDeserialize(
                  "src/afe/x.cc", "auto u = std::bit_cast<uint64_t>(d);")
                  .empty());
}

TEST(SimdRuleTest, FiresOnIntrinsicsOutsideSimd) {
  const std::string source =
      "#include <immintrin.h>\n"
      "__m256d v = _mm256_set1_pd(1.0);\n"
      "__m128i w = _mm_setzero_si128();\n";
  const std::vector<Finding> findings =
      CheckSimdIntrinsics("src/ml/histogram_builder.cc", source);
  ASSERT_EQ(findings.size(), 5u);  // immintrin + two types + two calls
  EXPECT_EQ(findings[0].rule, kRuleSimd);
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("src/simd/"), std::string::npos);
  EXPECT_EQ(findings[1].line, 2u);
}

TEST(SimdRuleTest, SimdDirCommentsAndEscapeAreExempt) {
  // src/simd/ is the sanctioned home for intrinsics.
  EXPECT_TRUE(CheckSimdIntrinsics(
                  "src/simd/minhash_kernels_avx2.cc",
                  "#include <immintrin.h>\n__m256d v = _mm256_set1_pd(1);")
                  .empty());
  // Prose mentioning intrinsics does not fire.
  EXPECT_TRUE(CheckSimdIntrinsics(
                  "src/ml/x.cc", "// _mm256_add_pd lives in src/simd/ now\n")
                  .empty());
  // The per-line escape hatch works.
  EXPECT_TRUE(
      CheckSimdIntrinsics(
          "src/ml/x.cc",
          "__m256d v = _mm256_set1_pd(1.0);  // eafe-lint: allow(simd) why\n")
          .empty());
  // Ordinary identifiers that merely contain 'mm' or 'simd' do not fire.
  EXPECT_TRUE(CheckSimdIntrinsics(
                  "src/ml/x.cc", "size_t comm = simd_level + mmap_len;")
                  .empty());
}

TEST(ServeSocketTest, FiresOnRawSocketCallsOutsideServerDir) {
  const std::string source =
      "int fd = socket(AF_INET, SOCK_STREAM, 0);\n"
      "::bind(fd, addr, len);\n"
      "send(fd, buf, n, 0);\n"
      "recv(fd, buf, n, 0);\n";
  const std::vector<Finding> findings =
      CheckServeSockets("src/afe/eval_service.cc", source);
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(findings[0].rule, kRuleServeSocket);
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("src/serve/server/"),
            std::string::npos);
  EXPECT_EQ(findings[1].line, 2u);  // global-scope ::bind is the POSIX one
}

TEST(ServeSocketTest, ServerDirIsExempt) {
  EXPECT_TRUE(CheckServeSockets(
                  "src/serve/server/server.cc",
                  "::listen(fd, 128);\n::accept(fd, nullptr, nullptr);\n")
                  .empty());
}

TEST(ServeSocketTest, IgnoresLookalikesMembersAndStdBind) {
  // std::bind is the <functional> adaptor, not the socket call.
  EXPECT_TRUE(CheckServeSockets(
                  "src/ml/x.cc", "auto f = std::bind(&F::g, this);")
                  .empty());
  // Member calls belong to someone else's API.
  EXPECT_TRUE(CheckServeSockets(
                  "src/ml/x.cc",
                  "client.send(data);\nchannel->recv(buffer);")
                  .empty());
  // Mentions outside call position (prose, variable names) do not fire.
  EXPECT_TRUE(CheckServeSockets(
                  "src/ml/x.cc",
                  "// send the batch through the socket layer\n"
                  "int send_count = 0; send_count += 1;")
                  .empty());
  // The per-line escape hatch works.
  EXPECT_TRUE(CheckServeSockets(
                  "src/ml/x.cc",
                  "send(fd, b, n, 0);  // eafe-lint: allow(serve-socket) x\n")
                  .empty());
}

constexpr char kTestsCMake[] = R"cmake(
# labels drive suite selection
eafe_add_test(good_test
  LABELS "ml;tsan"
  SOURCES ml/good_test.cc
)
eafe_add_test(unlabeled_test SOURCES core/plain_test.cc)
eafe_add_test(needs_tsan_test
  LABELS runtime
  SOURCES runtime/pool_test.cc
)
)cmake";

std::optional<std::string> FakeSource(const std::string& path) {
  if (path == "ml/good_test.cc") return "TEST(G, ParallelForIsCovered) {}";
  if (path == "core/plain_test.cc") return "TEST(P, NoConcurrency) {}";
  if (path == "runtime/pool_test.cc") {
    return "#include \"runtime/thread_pool.h\"\nruntime::ThreadPool pool;";
  }
  return std::nullopt;
}

TEST(TestLabelsTest, ParsesRegistrations) {
  const std::vector<TestRegistration> tests =
      ParseTestRegistrations(kTestsCMake);
  ASSERT_EQ(tests.size(), 3u);
  EXPECT_EQ(tests[0].name, "good_test");
  EXPECT_EQ(tests[0].labels, (std::vector<std::string>{"ml", "tsan"}));
  EXPECT_EQ(tests[0].sources, (std::vector<std::string>{"ml/good_test.cc"}));
  EXPECT_TRUE(tests[1].labels.empty());
  EXPECT_EQ(tests[2].labels, (std::vector<std::string>{"runtime"}));
}

TEST(TestLabelsTest, FlagsUnlabeledAndMissingTsan) {
  const std::vector<Finding> findings =
      CheckTestLabels(ParseTestRegistrations(kTestsCMake), FakeSource);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, kRuleTestLabels);
  EXPECT_NE(findings[0].message.find("unlabeled_test"), std::string::npos);
  EXPECT_NE(findings[1].message.find("needs_tsan_test"), std::string::npos);
  EXPECT_NE(findings[1].message.find("ThreadPool"), std::string::npos);
  EXPECT_NE(findings[1].message.find("tsan"), std::string::npos);
}

TEST(TestLabelsTest, TsanLabeledConcurrencyTestIsClean) {
  const std::string cmake =
      "eafe_add_test(t LABELS \"runtime;tsan\" SOURCES runtime/pool_test.cc)";
  EXPECT_TRUE(
      CheckTestLabels(ParseTestRegistrations(cmake), FakeSource).empty());
}

TEST(TestLabelsTest, PipelineTypesRequireTsan) {
  // The pipelined-search surface counts as concurrency: sources naming
  // BoundedQueue / Pipeline / SearchStepPipeline need the tsan label.
  const std::string cmake =
      "eafe_add_test(q LABELS runtime SOURCES runtime/queue_test.cc)";
  const auto source = [](const std::string&) -> std::optional<std::string> {
    return "runtime::BoundedQueue<int> queue(options);";
  };
  const std::vector<Finding> findings =
      CheckTestLabels(ParseTestRegistrations(cmake), source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("BoundedQueue"), std::string::npos);

  // Exact identifier matching: a source that only names PipelineTest or
  // PipelineMode (e.g. toggling SearchOptions::pipeline) is not on the
  // concurrency surface and stays clean without the label.
  const auto benign = [](const std::string&) -> std::optional<std::string> {
    return "TEST(PipelineTest, X) { options.pipeline = PipelineMode::kSync; }";
  };
  EXPECT_TRUE(
      CheckTestLabels(ParseTestRegistrations(
                          "eafe_add_test(p LABELS afe SOURCES afe/p_test.cc)"),
                      benign)
          .empty());
}

constexpr char kEvaluatorHeader[] = R"cc(
struct EvaluatorOptions {
  ModelKind model = ModelKind::kRandomForest;
  size_t cv_folds = 5;
  uint64_t seed = 1;
  double gbdt_lambda = 1.0;
};
)cc";

TEST(CacheSignatureTest, ParsesFields) {
  EXPECT_EQ(ParseEvaluatorOptionsFields(kEvaluatorHeader),
            (std::vector<std::string>{"model", "cv_folds", "seed",
                                      "gbdt_lambda"}));
}

TEST(CacheSignatureTest, FlagsFieldMissingFromSignature) {
  const std::string service =
      "uint64_t EvaluationSignature(const ml::EvaluatorOptions& options) {\n"
      "  digest = MixHash(digest, 0, static_cast<uint64_t>(options.model));\n"
      "  digest = MixHash(digest, 1, options.cv_folds);\n"
      "  digest = MixHash(digest, 2, options.seed);\n"
      "}\n";
  const std::vector<Finding> findings =
      CheckCacheSignature(kEvaluatorHeader, service);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kRuleCacheSignature);
  EXPECT_EQ(findings[0].line, 1u);  // anchored at EvaluationSignature()
  EXPECT_NE(findings[0].message.find("EvaluatorOptions::gbdt_lambda"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("share cached scores"),
            std::string::npos);
}

TEST(CacheSignatureTest, CompleteSignatureIsClean) {
  const std::string service =
      "uint64_t EvaluationSignature(const ml::EvaluatorOptions& options) {\n"
      "  Mix(options.model); Mix(options.cv_folds); Mix(options.seed);\n"
      "  Mix(std::bit_cast<uint64_t>(options.gbdt_lambda));\n"
      "}\n";
  EXPECT_TRUE(CheckCacheSignature(kEvaluatorHeader, service).empty());
}

TEST(CacheSignatureTest, UnparsableHeaderIsItselfAFinding) {
  const std::vector<Finding> findings =
      CheckCacheSignature("struct SomethingElse {};", "");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(Rules(findings), (std::vector<std::string>{kRuleCacheSignature}));
}

}  // namespace
}  // namespace eafe::lint
