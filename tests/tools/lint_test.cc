#include "tools/lint/lint.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lint/include_graph.h"

namespace eafe::lint {
namespace {

// Every rule must (a) fire on a known-bad snippet with a pointed message
// and (b) stay quiet on the idiomatic equivalent — the lint suite is only
// trustworthy if both directions are pinned.

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& finding : findings) rules.push_back(finding.rule);
  return rules;
}

TEST(StripCommentsAndStringsTest, ErasesCommentsAndLiteralsKeepingLines) {
  const std::string source =
      "int a; // std::thread in a comment\n"
      "/* rand() in a block\n"
      "   comment */ int b;\n"
      "const char* s = \"std::random_device\";\n"
      "char c = 'r';\n";
  const std::string stripped = StripCommentsAndStrings(source);
  EXPECT_EQ(stripped.find("thread"), std::string::npos);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("random_device"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
  // Line structure is preserved so findings keep real line numbers.
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(source.begin(), source.end(), '\n'));
}

TEST(StripCommentsAndStringsTest, HandlesRawStringsAndDigitSeparators) {
  const std::string source =
      "auto r = R\"(rand() time(nullptr))\";\n"
      "int n = 1'000'000;\n"
      "int m = n;\n";
  const std::string stripped = StripCommentsAndStrings(source);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int m = n;"), std::string::npos);
}

TEST(DeterminismTest, FiresOnEntropyAndWallClockSources) {
  const std::string source =
      "#include <random>\n"
      "int a = rand();\n"
      "std::random_device rd;\n"
      "auto t = std::chrono::system_clock::now();\n"
      "long w = std::time(nullptr);\n";
  const std::vector<Finding> findings = CheckDeterminism("src/ml/x.cc", source);
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[0].rule, kRuleDeterminism);
  EXPECT_NE(findings[0].message.find("eafe::Rng"), std::string::npos);
  EXPECT_EQ(findings[1].line, 3u);
  EXPECT_EQ(findings[2].line, 4u);
  EXPECT_EQ(findings[3].line, 5u);
}

TEST(DeterminismTest, IgnoresLookalikesCommentsAndSteadyClock) {
  const std::string source =
      "// rand() in prose is fine\n"
      "double elapsed = stopwatch.time();\n"
      "double t = elapsed_time(3);\n"
      "auto now = std::chrono::steady_clock::now();\n"
      "int time_budget = 3;\n";
  EXPECT_TRUE(CheckDeterminism("src/ml/x.cc", source).empty());
}

TEST(DeterminismTest, AllowEscapeAndSeedEntryPointAreExempt) {
  const std::string escaped =
      "std::random_device rd;  // eafe-lint: allow(determinism) os seed\n";
  EXPECT_TRUE(CheckDeterminism("src/ml/x.cc", escaped).empty());
  // The escape names a specific rule; other rules still apply.
  EXPECT_TRUE(CheckDeterminism("src/core/rng.cc", "int a = rand();").empty());
}

TEST(RawThreadTest, FiresOutsideRuntime) {
  const std::string source =
      "#include <thread>\n"
      "std::thread t([] {});\n"
      "auto f = std::async([] { return 1; });\n"
      "pthread_create(nullptr, nullptr, nullptr, nullptr);\n";
  const std::vector<Finding> findings = CheckRawThreads("src/afe/x.cc", source);
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].rule, kRuleRawThread);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("runtime::ThreadPool"),
            std::string::npos);
}

TEST(RawThreadTest, RuntimeHardwareConcurrencyAndEscapeAreExempt) {
  EXPECT_TRUE(
      CheckRawThreads("src/runtime/thread_pool.cc", "std::thread t;").empty());
  EXPECT_TRUE(CheckRawThreads(
                  "src/core/flags.cc",
                  "size_t n = std::thread::hardware_concurrency();")
                  .empty());
  EXPECT_TRUE(CheckRawThreads(
                  "src/afe/x.cc",
                  "std::thread t;  // eafe-lint: allow(raw-thread) why\n")
                  .empty());
}

TEST(RawDeserializeTest, FiresOnFreadAndReinterpretCast) {
  const std::string source =
      "#include <cstdio>\n"
      "size_t n = fread(buf, 1, 64, f);\n"
      "const Header* h = reinterpret_cast<const Header*>(bytes.data());\n";
  const std::vector<Finding> findings =
      CheckRawDeserialize("src/fpe/serialization.cc", source);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, kRuleRawDeserialize);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("serve/wire.h"), std::string::npos);
  EXPECT_EQ(findings[1].line, 3u);
}

TEST(RawDeserializeTest, ServeCommentsAndEscapeAreExempt) {
  EXPECT_TRUE(CheckRawDeserialize(
                  "src/serve/wire.cc",
                  "auto* p = reinterpret_cast<const char*>(bytes);")
                  .empty());
  EXPECT_TRUE(CheckRawDeserialize(
                  "src/ml/x.cc", "// fread is banned; reinterpret_cast too\n")
                  .empty());
  EXPECT_TRUE(
      CheckRawDeserialize(
          "src/ml/x.cc",
          "fread(b, 1, 4, f);  // eafe-lint: allow(raw-deserialize) why\n")
          .empty());
  // std::bit_cast is the sanctioned in-process punning tool.
  EXPECT_TRUE(CheckRawDeserialize(
                  "src/afe/x.cc", "auto u = std::bit_cast<uint64_t>(d);")
                  .empty());
}

TEST(SimdRuleTest, FiresOnIntrinsicsOutsideSimd) {
  const std::string source =
      "#include <immintrin.h>\n"
      "__m256d v = _mm256_set1_pd(1.0);\n"
      "__m128i w = _mm_setzero_si128();\n";
  const std::vector<Finding> findings =
      CheckSimdIntrinsics("src/ml/histogram_builder.cc", source);
  ASSERT_EQ(findings.size(), 5u);  // immintrin + two types + two calls
  EXPECT_EQ(findings[0].rule, kRuleSimd);
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("src/simd/"), std::string::npos);
  EXPECT_EQ(findings[1].line, 2u);
}

TEST(SimdRuleTest, SimdDirCommentsAndEscapeAreExempt) {
  // src/simd/ is the sanctioned home for intrinsics.
  EXPECT_TRUE(CheckSimdIntrinsics(
                  "src/simd/minhash_kernels_avx2.cc",
                  "#include <immintrin.h>\n__m256d v = _mm256_set1_pd(1);")
                  .empty());
  // Prose mentioning intrinsics does not fire.
  EXPECT_TRUE(CheckSimdIntrinsics(
                  "src/ml/x.cc", "// _mm256_add_pd lives in src/simd/ now\n")
                  .empty());
  // The per-line escape hatch works.
  EXPECT_TRUE(
      CheckSimdIntrinsics(
          "src/ml/x.cc",
          "__m256d v = _mm256_set1_pd(1.0);  // eafe-lint: allow(simd) why\n")
          .empty());
  // Ordinary identifiers that merely contain 'mm' or 'simd' do not fire.
  EXPECT_TRUE(CheckSimdIntrinsics(
                  "src/ml/x.cc", "size_t comm = simd_level + mmap_len;")
                  .empty());
}

TEST(ServeSocketTest, FiresOnRawSocketCallsOutsideServerDir) {
  const std::string source =
      "int fd = socket(AF_INET, SOCK_STREAM, 0);\n"
      "::bind(fd, addr, len);\n"
      "send(fd, buf, n, 0);\n"
      "recv(fd, buf, n, 0);\n";
  const std::vector<Finding> findings =
      CheckServeSockets("src/afe/eval_service.cc", source);
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(findings[0].rule, kRuleServeSocket);
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("src/serve/server/"),
            std::string::npos);
  EXPECT_EQ(findings[1].line, 2u);  // global-scope ::bind is the POSIX one
}

TEST(ServeSocketTest, ServerDirIsExempt) {
  EXPECT_TRUE(CheckServeSockets(
                  "src/serve/server/server.cc",
                  "::listen(fd, 128);\n::accept(fd, nullptr, nullptr);\n")
                  .empty());
}

TEST(ServeSocketTest, IgnoresLookalikesMembersAndStdBind) {
  // std::bind is the <functional> adaptor, not the socket call.
  EXPECT_TRUE(CheckServeSockets(
                  "src/ml/x.cc", "auto f = std::bind(&F::g, this);")
                  .empty());
  // Member calls belong to someone else's API.
  EXPECT_TRUE(CheckServeSockets(
                  "src/ml/x.cc",
                  "client.send(data);\nchannel->recv(buffer);")
                  .empty());
  // Mentions outside call position (prose, variable names) do not fire.
  EXPECT_TRUE(CheckServeSockets(
                  "src/ml/x.cc",
                  "// send the batch through the socket layer\n"
                  "int send_count = 0; send_count += 1;")
                  .empty());
  // The per-line escape hatch works.
  EXPECT_TRUE(CheckServeSockets(
                  "src/ml/x.cc",
                  "send(fd, b, n, 0);  // eafe-lint: allow(serve-socket) x\n")
                  .empty());
}

constexpr char kTestsCMake[] = R"cmake(
# labels drive suite selection
eafe_add_test(good_test
  LABELS "ml;tsan"
  SOURCES ml/good_test.cc
)
eafe_add_test(unlabeled_test SOURCES core/plain_test.cc)
eafe_add_test(needs_tsan_test
  LABELS runtime
  SOURCES runtime/pool_test.cc
)
)cmake";

std::optional<std::string> FakeSource(const std::string& path) {
  if (path == "ml/good_test.cc") return "TEST(G, ParallelForIsCovered) {}";
  if (path == "core/plain_test.cc") return "TEST(P, NoConcurrency) {}";
  if (path == "runtime/pool_test.cc") {
    return "#include \"runtime/thread_pool.h\"\nruntime::ThreadPool pool;";
  }
  return std::nullopt;
}

TEST(TestLabelsTest, ParsesRegistrations) {
  const std::vector<TestRegistration> tests =
      ParseTestRegistrations(kTestsCMake);
  ASSERT_EQ(tests.size(), 3u);
  EXPECT_EQ(tests[0].name, "good_test");
  EXPECT_EQ(tests[0].labels, (std::vector<std::string>{"ml", "tsan"}));
  EXPECT_EQ(tests[0].sources, (std::vector<std::string>{"ml/good_test.cc"}));
  EXPECT_TRUE(tests[1].labels.empty());
  EXPECT_EQ(tests[2].labels, (std::vector<std::string>{"runtime"}));
}

TEST(TestLabelsTest, FlagsUnlabeledAndMissingTsan) {
  const std::vector<Finding> findings =
      CheckTestLabels(ParseTestRegistrations(kTestsCMake), FakeSource);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, kRuleTestLabels);
  EXPECT_NE(findings[0].message.find("unlabeled_test"), std::string::npos);
  EXPECT_NE(findings[1].message.find("needs_tsan_test"), std::string::npos);
  EXPECT_NE(findings[1].message.find("ThreadPool"), std::string::npos);
  EXPECT_NE(findings[1].message.find("tsan"), std::string::npos);
}

TEST(TestLabelsTest, TsanLabeledConcurrencyTestIsClean) {
  const std::string cmake =
      "eafe_add_test(t LABELS \"runtime;tsan\" SOURCES runtime/pool_test.cc)";
  EXPECT_TRUE(
      CheckTestLabels(ParseTestRegistrations(cmake), FakeSource).empty());
}

TEST(TestLabelsTest, PipelineTypesRequireTsan) {
  // The pipelined-search surface counts as concurrency: sources naming
  // BoundedQueue / Pipeline / SearchStepPipeline need the tsan label.
  const std::string cmake =
      "eafe_add_test(q LABELS runtime SOURCES runtime/queue_test.cc)";
  const auto source = [](const std::string&) -> std::optional<std::string> {
    return "runtime::BoundedQueue<int> queue(options);";
  };
  const std::vector<Finding> findings =
      CheckTestLabels(ParseTestRegistrations(cmake), source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("BoundedQueue"), std::string::npos);

  // Exact identifier matching: a source that only names PipelineTest or
  // PipelineMode (e.g. toggling SearchOptions::pipeline) is not on the
  // concurrency surface and stays clean without the label.
  const auto benign = [](const std::string&) -> std::optional<std::string> {
    return "TEST(PipelineTest, X) { options.pipeline = PipelineMode::kSync; }";
  };
  EXPECT_TRUE(
      CheckTestLabels(ParseTestRegistrations(
                          "eafe_add_test(p LABELS afe SOURCES afe/p_test.cc)"),
                      benign)
          .empty());
}

constexpr char kEvaluatorHeader[] = R"cc(
struct EvaluatorOptions {
  ModelKind model = ModelKind::kRandomForest;
  size_t cv_folds = 5;
  uint64_t seed = 1;
  double gbdt_lambda = 1.0;
};
)cc";

TEST(CacheSignatureTest, ParsesFields) {
  EXPECT_EQ(ParseEvaluatorOptionsFields(kEvaluatorHeader),
            (std::vector<std::string>{"model", "cv_folds", "seed",
                                      "gbdt_lambda"}));
}

TEST(CacheSignatureTest, FlagsFieldMissingFromSignature) {
  const std::string service =
      "uint64_t EvaluationSignature(const ml::EvaluatorOptions& options) {\n"
      "  digest = MixHash(digest, 0, static_cast<uint64_t>(options.model));\n"
      "  digest = MixHash(digest, 1, options.cv_folds);\n"
      "  digest = MixHash(digest, 2, options.seed);\n"
      "}\n";
  const std::vector<Finding> findings =
      CheckCacheSignature(kEvaluatorHeader, service);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kRuleCacheSignature);
  EXPECT_EQ(findings[0].line, 1u);  // anchored at EvaluationSignature()
  EXPECT_NE(findings[0].message.find("EvaluatorOptions::gbdt_lambda"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("share cached scores"),
            std::string::npos);
}

TEST(CacheSignatureTest, CompleteSignatureIsClean) {
  const std::string service =
      "uint64_t EvaluationSignature(const ml::EvaluatorOptions& options) {\n"
      "  Mix(options.model); Mix(options.cv_folds); Mix(options.seed);\n"
      "  Mix(std::bit_cast<uint64_t>(options.gbdt_lambda));\n"
      "}\n";
  EXPECT_TRUE(CheckCacheSignature(kEvaluatorHeader, service).empty());
}

TEST(CacheSignatureTest, UnparsableHeaderIsItselfAFinding) {
  const std::vector<Finding> findings =
      CheckCacheSignature("struct SomethingElse {};", "");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(Rules(findings), (std::vector<std::string>{kRuleCacheSignature}));
}

// ---------------------------------------------------------------------------
// Tokenizer regressions. The stripper must agree with the compiler on
// where every literal and comment ends — each case here is a lexing
// corner that once produced (or would produce) misfires inside rules.

TEST(TokenizerTest, RawStringCustomDelimiterIgnoresPlainCloseQuote) {
  // The body contains `)"` — a naive terminator search would end the
  // literal there and lint the rest of the body as code.
  const std::string source =
      "auto r = R\"x(rand() )\" fake close)x\";\n"
      "int keep = 1;\n";
  const std::string stripped = StripCommentsAndStrings(source);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("fake"), std::string::npos);
  EXPECT_NE(stripped.find("int keep = 1;"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(source.begin(), source.end(), '\n'));
}

TEST(TokenizerTest, BackslashNewlineContinuesLineComment) {
  // A line splice at the end of a // comment extends it onto the next
  // physical line, exactly as the preprocessor sees it.
  const std::string source =
      "int a = 1;  // spills over \\\n"
      "rand();\n"
      "int b = 2;\n";
  const std::string stripped = StripCommentsAndStrings(source);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int a = 1;"), std::string::npos);
  EXPECT_NE(stripped.find("int b = 2;"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(source.begin(), source.end(), '\n'));
}

TEST(TokenizerTest, AdjacentEscapesDoNotShiftLiteralBoundaries) {
  // `\\` immediately before the closing quote must not swallow it, and
  // `\"` inside a literal must not end it early.
  const std::string source =
      "const char* s = \"ends with \\\\\";\n"
      "int tail = 3;\n"
      "const char* t = \"quote \\\" rand() inside\";\n"
      "int last = 4;\n";
  const std::string stripped = StripCommentsAndStrings(source);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int tail = 3;"), std::string::npos);
  EXPECT_NE(stripped.find("int last = 4;"), std::string::npos);

  // Extraction keeps the escapes undecoded, exactly as written.
  const std::vector<StringLiteral> literals = ExtractStringLiterals(source);
  ASSERT_EQ(literals.size(), 2u);
  EXPECT_EQ(literals[0].text, "ends with \\\\");
  EXPECT_EQ(literals[0].line, 1u);
  EXPECT_EQ(literals[1].text, "quote \\\" rand() inside");
  EXPECT_EQ(literals[1].line, 3u);
}

TEST(TokenizerTest, UnterminatedLiteralsAtEofDoNotOverrun) {
  // Each truncation ends mid-state; the stripper must stop cleanly at
  // EOF (ASan runs of this suite prove there is no overrun).
  const std::string open_string = "const char* s = \"never closed";
  std::string stripped = StripCommentsAndStrings(open_string);
  EXPECT_EQ(stripped.size(), open_string.size());
  EXPECT_EQ(stripped.find("never"), std::string::npos);

  const std::string open_raw = "auto r = R\"(open forever";
  stripped = StripCommentsAndStrings(open_raw);
  EXPECT_EQ(stripped.size(), open_raw.size());
  EXPECT_EQ(stripped.find("forever"), std::string::npos);

  const std::string open_char = "char c = 'x";
  stripped = StripCommentsAndStrings(open_char);
  EXPECT_EQ(stripped.size(), open_char.size());
  EXPECT_EQ(stripped.find('x'), std::string::npos);

  const std::string trailing_backslash = "// comment ends in \\";
  stripped = StripCommentsAndStrings(trailing_backslash);
  EXPECT_EQ(stripped.size(), trailing_backslash.size());
  EXPECT_EQ(stripped.find("comment"), std::string::npos);

  // Extraction over a truncated literal yields the partial body.
  const std::vector<StringLiteral> literals =
      ExtractStringLiterals(open_string);
  ASSERT_EQ(literals.size(), 1u);
  EXPECT_EQ(literals[0].text, "never closed");
}

TEST(ExtractStringLiteralsTest, SkipsCommentsAndReadsRawBodiesVerbatim) {
  const std::string source =
      "// \"not extracted\"\n"
      "const char* a = \"first\";\n"
      "auto r = R\"y(raw \"quoted\" body)y\";\n";
  const std::vector<StringLiteral> literals = ExtractStringLiterals(source);
  ASSERT_EQ(literals.size(), 2u);
  EXPECT_EQ(literals[0].text, "first");
  EXPECT_EQ(literals[0].line, 2u);
  EXPECT_EQ(literals[1].text, "raw \"quoted\" body");
  EXPECT_EQ(literals[1].line, 3u);
}

TEST(FindingFormatTest, GithubWorkflowCommandsEscapeMetacharacters) {
  Finding finding;
  finding.file = "src/a,b:c.cc";
  finding.line = 7;
  finding.rule = "layering";
  finding.message = "100% broken\nsee docs";
  // Properties escape ',' and ':' (list delimiters); message data only
  // needs % CR LF.
  EXPECT_EQ(finding.ToGithub(),
            "::error file=src/a%2Cb%3Ac.cc,line=7,"
            "title=eafe-lint [layering]::100%25 broken%0Asee docs");

  Finding repo_level;
  repo_level.rule = "metric-registry";
  repo_level.message = "drift";
  EXPECT_EQ(repo_level.ToGithub(),
            "::error title=eafe-lint [metric-registry]::drift");
}

TEST(RuleIdsTest, AllRuleIdsIsCompleteAndUnique) {
  const std::vector<std::string> ids = AllRuleIds();
  EXPECT_EQ(ids.size(), 13u);
  EXPECT_EQ(std::set<std::string>(ids.begin(), ids.end()).size(), ids.size());
  for (const char* rule :
       {kRuleIncludeCycle, kRuleLayering, kRuleCondvarPredicate,
        kRuleNakedLock, kRuleMetricRegistry, kRuleUnusedSuppression}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), rule), ids.end()) << rule;
  }
}

TEST(ParseAllowDirectivesTest, ParsesLinesAndMultiRuleLists) {
  const std::string source =
      "a();  // eafe-lint: allow(simd, raw-thread) dispatch shim\n"
      "b();\n"
      "c();  // eafe-lint: allow(determinism)\n";
  const std::vector<AllowDirective> directives = ParseAllowDirectives(source);
  ASSERT_EQ(directives.size(), 3u);
  EXPECT_EQ(directives[0].line, 1u);
  EXPECT_EQ(directives[0].rule, "simd");
  EXPECT_EQ(directives[1].line, 1u);
  EXPECT_EQ(directives[1].rule, "raw-thread");
  EXPECT_EQ(directives[2].line, 3u);
  EXPECT_EQ(directives[2].rule, "determinism");
}

TEST(CondvarPredicateTest, FiresOnPredicatelessWaitsInScope) {
  const std::string source =
      "cv_.wait(lock);\n"
      "cv_.wait_for(lock, std::chrono::milliseconds(5));\n"
      "cv_.wait_until(lock, deadline);\n"
      "cv_.wait((lock));\n";  // nested parens still count one argument
  const std::vector<Finding> findings =
      CheckCondvarPredicate("src/runtime/bounded_queue.cc", source);
  ASSERT_EQ(findings.size(), 4u);
  for (size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(findings[i].rule, kRuleCondvarPredicate);
    EXPECT_EQ(findings[i].line, i + 1);
    EXPECT_NE(findings[i].message.find("predicate"), std::string::npos);
  }
  // src/serve/server/ is the other directory in scope.
  EXPECT_EQ(
      CheckCondvarPredicate("src/serve/server/batch_queue.cc", "cv.wait(lk);")
          .size(),
      1u);
}

TEST(CondvarPredicateTest, PredicateFutureAndOutOfScopeAreQuiet) {
  // The predicate overloads carry one extra argument and are the point.
  EXPECT_TRUE(CheckCondvarPredicate(
                  "src/runtime/q.cc",
                  "cv_.wait(lock, [&] { return ready_; });")
                  .empty());
  EXPECT_TRUE(CheckCondvarPredicate(
                  "src/runtime/q.cc",
                  "cv_.wait_for(lock, timeout, [&] { return done(a, b); });")
                  .empty());
  // Zero-argument wait is std::future's API, not a condvar.
  EXPECT_TRUE(
      CheckCondvarPredicate("src/runtime/q.cc", "future.wait();").empty());
  // Free functions and declarations named wait are not member waits.
  EXPECT_TRUE(
      CheckCondvarPredicate("src/runtime/q.cc", "int r = wait(fd);").empty());
  EXPECT_TRUE(CheckCondvarPredicate("src/runtime/q.cc",
                                    "std::future<int> wait(Task t);")
                  .empty());
  // Outside src/runtime/ and src/serve/server/ the rule does not apply.
  EXPECT_TRUE(CheckCondvarPredicate("src/ml/x.cc", "cv.wait(lock);").empty());
  // The per-line escape hatch works.
  EXPECT_TRUE(
      CheckCondvarPredicate(
          "src/runtime/q.cc",
          "cv_.wait(lock);  // eafe-lint: allow(condvar-predicate) why\n")
          .empty());
}

TEST(NakedLockTest, FiresOnBareLockAndUnlockOutsideRuntime) {
  const std::string source =
      "mu_.lock();\n"
      "mu_.unlock();\n"
      "state->mu.lock();\n";
  const std::vector<Finding> findings =
      CheckNakedLocks("src/serve/server/batch_queue.cc", source);
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].rule, kRuleNakedLock);
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("RAII"), std::string::npos);
  EXPECT_EQ(findings[1].line, 2u);
  EXPECT_EQ(findings[2].line, 3u);
}

TEST(NakedLockTest, GuardsRuntimeTemplateClosersAndEscapeAreQuiet) {
  // RAII declarations: `> lock(mu_)` is a template closer followed by a
  // variable name, not a member call.
  EXPECT_TRUE(CheckNakedLocks("src/serve/server/s.cc",
                              "std::lock_guard<std::mutex> lock(mu_);\n"
                              "std::unique_lock<std::mutex> held(mu_);\n")
                  .empty());
  // std::lock(a, b) is the deadlock-avoiding free function.
  EXPECT_TRUE(CheckNakedLocks("src/ml/x.cc", "std::lock(a, b);").empty());
  // src/runtime/ is the audited home for manual lock juggling.
  EXPECT_TRUE(
      CheckNakedLocks("src/runtime/bounded_queue.cc", "mu_.lock();").empty());
  // weak_ptr::lock() is promotion, not a mutex; the escape documents it.
  EXPECT_TRUE(
      CheckNakedLocks(
          "src/ml/x.cc",
          "auto s = weak.lock();  // eafe-lint: allow(naked-lock) weak_ptr\n")
          .empty());
}

TEST(MetricRegistryTest, FlagsUnregisteredDuplicateUndocumentedAndStale) {
  const std::string registry =
      "inline constexpr char kGood[] = \"eafe_good_total\";\n"
      "inline constexpr char kDup[] = \"eafe_dup_total\";\n"
      "inline constexpr char kDupAgain[] = \"eafe_dup_total\";\n"
      "inline constexpr char kUndoc[] = \"eafe_undocumented_total\";\n"
      "inline constexpr char kStale[] = \"eafe_stale_total\";\n";
  const std::string user =
      "metrics.Add(\"eafe_good_total\", 1);\n"
      "metrics.Add(\"eafe_dup_total\", 1);\n"
      "metrics.Add(\"eafe_undocumented_total\", 1);\n"
      "metrics.Add(\"eafe_rogue_total\", 1);\n";
  const std::string readme =
      "| eafe_good_total | eafe_dup_total | eafe_stale_total |";
  const std::vector<Finding> findings = CheckMetricRegistry(
      {{kMetricRegistryPath, registry}, {"src/foo/bar.cc", user}}, readme);
  ASSERT_EQ(findings.size(), 4u);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule, kRuleMetricRegistry);
  }
  // Duplicate registration, anchored at the second declaration.
  EXPECT_EQ(findings[0].file, kMetricRegistryPath);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("registered twice"), std::string::npos);
  // Use without registration, anchored at the use site.
  EXPECT_EQ(findings[1].file, "src/foo/bar.cc");
  EXPECT_EQ(findings[1].line, 4u);
  EXPECT_NE(findings[1].message.find("eafe_rogue_total"), std::string::npos);
  // Registered but used nowhere.
  EXPECT_NE(findings[2].message.find("eafe_stale_total"), std::string::npos);
  EXPECT_NE(findings[2].message.find("used by no literal"), std::string::npos);
  // Registered but absent from README's metrics docs.
  EXPECT_NE(findings[3].message.find("eafe_undocumented_total"),
            std::string::npos);
  EXPECT_NE(findings[3].message.find("README"), std::string::npos);
}

TEST(MetricRegistryTest, ExactMatchCleanAndMissingRegistry) {
  // Prefix families are registered as the literal the call site spells
  // ("eafe_pipeline"); matching is exact, not substring.
  const std::string registry =
      "inline constexpr char kPipelinePrefix[] = \"eafe_pipeline\";\n";
  const std::string user = "counters.Publish(\"eafe_pipeline\", stats);\n";
  EXPECT_TRUE(CheckMetricRegistry(
                  {{kMetricRegistryPath, registry}, {"src/afe/s.cc", user}},
                  "the eafe_pipeline family")
                  .empty());
  // Strings that are not eafe_* metric names never participate.
  EXPECT_TRUE(CheckMetricRegistry({{kMetricRegistryPath, registry},
                                   {"src/afe/s.cc",
                                    "Log(\"eafe_pipeline\");\n"
                                    "Log(\"plain diagnostic text\");\n"}},
                                  "eafe_pipeline docs")
                  .empty());
  // A tree without the registry header is a single repo-level finding.
  const std::vector<Finding> missing =
      CheckMetricRegistry({{"src/afe/s.cc", user}}, "");
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].rule, kRuleMetricRegistry);
  EXPECT_EQ(missing[0].file, kMetricRegistryPath);
  EXPECT_NE(missing[0].message.find("missing"), std::string::npos);
}

TEST(UnusedSuppressionTest, FlagsStaleAndUnknownKeepsLoadBearing) {
  const std::string source =
      "int a = rand();  // eafe-lint: allow(determinism) seeded by env\n"
      "int b = 2;       // eafe-lint: allow(determinism) suppresses nil\n"
      "int c = 3;       // eafe-lint: allow(determinizm) typo\n";
  Finding suppressed;
  suppressed.file = "src/ml/x.cc";
  suppressed.line = 1;
  suppressed.rule = kRuleDeterminism;
  const std::vector<Finding> findings =
      CheckUnusedSuppressions("src/ml/x.cc", source, {suppressed});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, kRuleUnusedSuppression);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("suppresses nothing"), std::string::npos);
  EXPECT_EQ(findings[1].line, 3u);
  EXPECT_NE(findings[1].message.find("no known rule"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Include-graph engine: parsing, resolution, cycles, layering, and the
// spec <-> architecture-doc cross-check, all over synthetic trees.

TEST(IncludeGraphTest, ParseIncludesSkipsCommentsAndSystemIncludes) {
  const std::string source =
      "#include <vector>\n"
      "#include \"core/matrix.h\"\n"
      "// #include \"ml/evaluator.h\"\n"
      "  #  include \"data/column.h\"\n";
  const std::vector<IncludeEdge> edges = ParseIncludes("src/ml/x.cc", source);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].from, "src/ml/x.cc");
  EXPECT_EQ(edges[0].line, 2u);
  EXPECT_EQ(edges[0].target, "core/matrix.h");
  EXPECT_TRUE(edges[0].to.empty());  // resolution is BuildIncludeGraph's job
  EXPECT_EQ(edges[1].line, 4u);
  EXPECT_EQ(edges[1].target, "data/column.h");
}

TEST(IncludeGraphTest, BuildResolvesSrcFirstThenRepoRoot) {
  const std::map<std::string, std::string> files = {
      {"src/core/a.h", ""},
      {"src/ml/b.h", "#include \"core/a.h\"\n#include \"missing/z.h\"\n"},
      {"tools/lint/t.cc",
       "#include \"tools/lint/t.h\"\n#include \"core/a.h\"\n"},
      {"tools/lint/t.h", ""},
  };
  const IncludeGraph graph = BuildIncludeGraph(files);
  EXPECT_EQ(graph.files.size(), 4u);
  ASSERT_EQ(graph.edges.size(), 4u);
  EXPECT_EQ(graph.edges[0].from, "src/ml/b.h");
  EXPECT_EQ(graph.edges[0].to, "src/core/a.h");  // src/ root wins
  EXPECT_TRUE(graph.edges[1].to.empty());        // unresolved -> external
  EXPECT_EQ(graph.edges[2].from, "tools/lint/t.cc");
  EXPECT_EQ(graph.edges[2].to, "tools/lint/t.h");  // repo-root fallback
  EXPECT_EQ(graph.edges[3].to, "src/core/a.h");

  // The resolved synthetic tree is acyclic.
  EXPECT_TRUE(FindIncludeCycles(graph).empty());
  EXPECT_TRUE(CheckIncludeCycles(graph).empty());
}

TEST(IncludeGraphTest, FindsCyclesAndSelfIncludes) {
  const std::map<std::string, std::string> files = {
      {"src/core/a.h", "#include \"core/b.h\"\n"},
      {"src/core/b.h", "#include \"core/a.h\"\n"},
      {"src/core/c.h", "#include \"core/c.h\"\n"},
      {"src/core/d.h", "#include \"core/a.h\"\n"},  // points in, not cyclic
  };
  const IncludeGraph graph = BuildIncludeGraph(files);
  const std::vector<std::vector<std::string>> cycles =
      FindIncludeCycles(graph);
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0],
            (std::vector<std::string>{"src/core/a.h", "src/core/b.h"}));
  EXPECT_EQ(cycles[1], (std::vector<std::string>{"src/core/c.h"}));

  const std::vector<Finding> findings = CheckIncludeCycles(graph);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, kRuleIncludeCycle);
  EXPECT_EQ(findings[0].file, "src/core/a.h");
  EXPECT_EQ(findings[0].line, 1u);  // anchored at the offending #include
  EXPECT_NE(findings[0].message.find(
                "src/core/a.h -> src/core/b.h -> src/core/a.h"),
            std::string::npos);
  EXPECT_EQ(findings[1].file, "src/core/c.h");
  EXPECT_NE(findings[1].message.find("src/core/c.h -> src/core/c.h"),
            std::string::npos);
}

LayerSpec Spec(const std::string& text) {
  std::string error;
  const std::optional<LayerSpec> spec = ParseLayerSpec(text, &error);
  EXPECT_TRUE(spec.has_value()) << error;
  return spec.value_or(LayerSpec{});
}

TEST(LayerSpecTest, ParsesBottomUpDeclarationsCommentsAndStar) {
  const LayerSpec spec = Spec(
      "# comment line\n"
      "core:\n"
      "runtime: core\n"
      "ml: core, runtime  # trailing comment\n"
      "tools: *\n");
  EXPECT_EQ(spec.order,
            (std::vector<std::string>{"core", "runtime", "ml", "tools"}));
  EXPECT_TRUE(spec.allowed.at("core").empty());
  EXPECT_EQ(spec.allowed.at("ml"),
            (std::set<std::string>{"core", "runtime"}));
  EXPECT_EQ(spec.allowed.at("tools"), (std::set<std::string>{"*"}));
}

TEST(LayerSpecTest, RejectsMalformedSpecsWithPointedErrors) {
  std::string error;
  EXPECT_FALSE(ParseLayerSpec("core:\nml: data\n", &error).has_value());
  EXPECT_NE(error.find("undeclared"), std::string::npos);
  EXPECT_FALSE(ParseLayerSpec("core:\ncore:\n", &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
  EXPECT_FALSE(ParseLayerSpec("core\n", &error).has_value());
  EXPECT_NE(error.find("expected"), std::string::npos);
  EXPECT_FALSE(ParseLayerSpec("# only comments\n", &error).has_value());
  EXPECT_NE(error.find("no layers"), std::string::npos);
}

TEST(LayerSpecTest, LayerOfMapsEveryTreeShape) {
  EXPECT_EQ(LayerOf("src/core/rng.h"), "core");
  EXPECT_EQ(LayerOf("src/serve/server/server.cc"), "serve");  // nested dirs
  EXPECT_EQ(LayerOf("src/eafe.h"), "api");
  EXPECT_EQ(LayerOf("tools/lint/lint.cc"), "tools");
  EXPECT_EQ(LayerOf("tests/tools/lint_test.cc"), "tests");
  EXPECT_EQ(LayerOf("bench/bench_main.cc"), "bench");
  EXPECT_EQ(LayerOf("examples/quickstart.cpp"), "examples");
  EXPECT_EQ(LayerOf("docs/ARCHITECTURE.md"), "");
  EXPECT_EQ(LayerOf("src/loose_file.cc"), "");
}

TEST(LayeringTest, FlagsBreachesAndHonorsSpecAndStar) {
  const std::map<std::string, std::string> files = {
      {"src/core/a.h", "#include \"core/b.h\"\n"},  // same layer: fine
      {"src/core/b.h", ""},
      {"src/data/column.h", "#include \"ml/m.h\"\n"},  // breach: data !> ml
      {"src/ml/m.h", "#include \"data/column.h\"\n#include \"core/a.h\"\n"},
      {"tools/lint/t.cc", "#include \"ml/m.h\"\n"},  // '*' layer: fine
  };
  const LayerSpec spec = Spec(
      "core:\n"
      "data: core\n"
      "ml: core, data\n"
      "tools: *\n");
  const std::vector<Finding> findings =
      CheckLayering(BuildIncludeGraph(files), spec);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kRuleLayering);
  EXPECT_EQ(findings[0].file, "src/data/column.h");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("may only include {core}"),
            std::string::npos);
}

TEST(LayeringTest, UnknownDirectoriesAndUndeclaredLayersAreFindings) {
  const std::map<std::string, std::string> files = {
      {"src/core/a.h", ""},
      {"third_party/x.h", "#include \"core/a.h\"\n"},
  };
  const LayerSpec spec = Spec("core:\n");
  const std::vector<Finding> unknown =
      CheckLayering(BuildIncludeGraph(files), spec);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_NE(unknown[0].message.find("no known layer"), std::string::npos);

  // A real layer the spec forgot to declare is its own finding.
  const std::map<std::string, std::string> undeclared = {
      {"src/core/a.h", ""},
      {"src/ml/m.h", "#include \"core/a.h\"\n"},
  };
  const std::vector<Finding> findings =
      CheckLayering(BuildIncludeGraph(undeclared), spec);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("not declared"), std::string::npos);
}

constexpr char kArchDocGood[] = R"md(# Architecture

Dependencies point strictly downward.

## Layers

```
tools/   tests/
───────────────────
ml/
───────────────────
core/
```
)md";

TEST(ArchDocCrossCheckTest, AcceptsMatchingSpecAndDiagram) {
  const LayerSpec spec = Spec(
      "core:\n"
      "ml: core\n"
      "tools: *\n"
      "tests: *\n");
  EXPECT_TRUE(
      CheckLayerSpecMatchesArchitectureDoc(spec, kArchDocGood).empty());
}

TEST(ArchDocCrossCheckTest, FlagsMissingLayersInBothDirections) {
  // 'data' is in the spec but not the diagram; 'tests' is in the
  // diagram but not the spec.
  const LayerSpec spec = Spec(
      "core:\n"
      "data: core\n"
      "ml: core, data\n"
      "tools: *\n");
  const std::vector<Finding> findings =
      CheckLayerSpecMatchesArchitectureDoc(spec, kArchDocGood);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, kRuleLayering);
  EXPECT_NE(findings[0].message.find("'data'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("missing"), std::string::npos);
  EXPECT_NE(findings[1].message.find("'tests'"), std::string::npos);
  EXPECT_NE(findings[1].message.find("not declared"), std::string::npos);
}

TEST(ArchDocCrossCheckTest, FlagsUpwardDependenciesAllowsSameBand) {
  // The spec parses (declared bottom-up) but contradicts the diagram:
  // core sits in the bottom band yet claims a dependency on ml above it.
  const LayerSpec upward = Spec(
      "ml:\n"
      "core: ml\n"
      "tools: *\n"
      "tests: *\n");
  const std::vector<Finding> findings =
      CheckLayerSpecMatchesArchitectureDoc(upward, kArchDocGood);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kRuleLayering);
  EXPECT_NE(findings[0].message.find("higher band"), std::string::npos);

  // Peers in one band may depend on each other (runtime <- simd).
  constexpr char kPeers[] =
      "## Layers\n```\nruntime/  simd/\n─────\ncore/\n```\n";
  const LayerSpec peers = Spec(
      "core:\n"
      "runtime: core\n"
      "simd: core, runtime\n");
  EXPECT_TRUE(CheckLayerSpecMatchesArchitectureDoc(peers, kPeers).empty());
}

TEST(ArchDocCrossCheckTest, MissingOrEmptyDiagramIsItselfAFinding) {
  const LayerSpec spec = Spec("core:\n");
  const std::vector<Finding> no_heading =
      CheckLayerSpecMatchesArchitectureDoc(spec, "no layer section here");
  ASSERT_EQ(no_heading.size(), 1u);
  EXPECT_NE(no_heading[0].message.find("fenced layer diagram"),
            std::string::npos);

  const std::vector<Finding> no_tokens = CheckLayerSpecMatchesArchitectureDoc(
      spec, "## Layers\n```\njust prose, no layer tokens\n```\n");
  ASSERT_EQ(no_tokens.size(), 1u);
  EXPECT_NE(no_tokens[0].message.find("names no"), std::string::npos);
}

}  // namespace
}  // namespace eafe::lint
