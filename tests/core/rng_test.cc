#include "core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace eafe {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{7});
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit.
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-3}, int64_t{3});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(11);
  constexpr int kN = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(11);
  constexpr int kN = 30000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.1);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(13);
  constexpr int kN = 30000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.03);
}

TEST(RngTest, GammaMeanEqualsShape) {
  Rng rng(17);
  constexpr int kN = 30000;
  for (double shape : {0.5, 1.0, 2.0, 5.0}) {
    double sum = 0.0;
    for (int i = 0; i < kN; ++i) {
      const double x = rng.Gamma(shape);
      EXPECT_GT(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum / kN, shape, 0.12 * shape + 0.02);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  constexpr int kN = 20000;
  int heads = 0;
  for (int i = 0; i < kN; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / kN, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);  // Zero weight never drawn.
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kN, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[3]) / kN, 0.6, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(29);
  const std::vector<size_t> perm = rng.Permutation(50);
  std::set<size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(RngTest, SampleWithoutReplacementUnique) {
  Rng rng(31);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(31);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(37);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  // The child stream differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace eafe
