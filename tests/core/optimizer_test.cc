#include "core/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eafe {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // f(x) = (x - 3)^2, gradient 2(x - 3).
  Adam::Options options;
  options.learning_rate = 0.1;
  Adam adam(options);
  std::vector<double> params = {0.0};
  for (int i = 0; i < 500; ++i) {
    std::vector<double> grads = {2.0 * (params[0] - 3.0)};
    adam.Step(&params, grads);
  }
  EXPECT_NEAR(params[0], 3.0, 1e-3);
}

TEST(AdamTest, MinimizesMultiDimensional) {
  Adam::Options options;
  options.learning_rate = 0.05;
  Adam adam(options);
  std::vector<double> params = {5.0, -5.0, 1.0};
  const std::vector<double> target = {1.0, 2.0, -3.0};
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> grads(3);
    for (size_t d = 0; d < 3; ++d) grads[d] = params[d] - target[d];
    adam.Step(&params, grads);
  }
  for (size_t d = 0; d < 3; ++d) EXPECT_NEAR(params[d], target[d], 1e-2);
}

TEST(AdamTest, FirstStepIsLearningRateSized) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Adam::Options options;
  options.learning_rate = 0.01;
  Adam adam(options);
  std::vector<double> params = {0.0};
  adam.Step(&params, {123.0});
  EXPECT_NEAR(params[0], -0.01, 1e-6);
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  Adam::Options options;
  options.learning_rate = 0.1;
  options.weight_decay = 0.1;
  Adam adam(options);
  std::vector<double> params = {10.0};
  for (int i = 0; i < 200; ++i) {
    adam.Step(&params, {0.0});  // Zero gradient: decay only.
  }
  // Decay factor per step is (1 - lr * wd) = 0.99: expect ~10 * 0.99^200.
  EXPECT_NEAR(params[0], 10.0 * std::pow(0.99, 200), 0.05);
}

TEST(AdamTest, ResetClearsState) {
  Adam adam;
  std::vector<double> params = {1.0};
  adam.Step(&params, {1.0});
  EXPECT_EQ(adam.step_count(), 1);
  adam.Reset();
  EXPECT_EQ(adam.step_count(), 0);
}

TEST(AdamTest, StepCountAdvances) {
  Adam adam;
  std::vector<double> params = {0.0, 0.0};
  for (int i = 1; i <= 5; ++i) {
    adam.Step(&params, {0.1, -0.1});
    EXPECT_EQ(adam.step_count(), i);
  }
}

}  // namespace
}  // namespace eafe
