#include "core/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace eafe::stats {
namespace {

TEST(StatsTest, MeanVarianceStdDev) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(Variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, EmptyAndSingletonEdgeCases) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
}

TEST(StatsTest, PearsonCorrelationExtremes) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  for (double& v : y) v = -v;
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, {1, 1, 1, 1, 1}), 0.0);
}

TEST(StatsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(StatsTest, RegularizedIncompleteBetaBounds) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
  // I_x(1,1) = x (uniform CDF).
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.37), 0.37, 1e-10);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  const double lhs = RegularizedIncompleteBeta(2.5, 4.0, 0.3);
  const double rhs = 1.0 - RegularizedIncompleteBeta(4.0, 2.5, 0.7);
  EXPECT_NEAR(lhs, rhs, 1e-10);
}

TEST(StatsTest, StudentTCdfMatchesTables) {
  // t(df=10), P(T <= 2.228) ~= 0.975.
  EXPECT_NEAR(StudentTCdf(2.228, 10), 0.975, 1e-3);
  EXPECT_NEAR(StudentTCdf(0.0, 5), 0.5, 1e-12);
  EXPECT_NEAR(StudentTCdf(-2.228, 10), 0.025, 1e-3);
}

TEST(PairedTTestTest, DetectsConsistentImprovement) {
  const std::vector<double> a = {0.70, 0.72, 0.68, 0.75, 0.71, 0.69};
  std::vector<double> b;
  for (double v : a) b.push_back(v + 0.02);
  const TestResult result = PairedTTest(a, b).ValueOrDie();
  EXPECT_LT(result.p_value, 0.01);
  EXPECT_GT(result.statistic, 0.0);
}

TEST(PairedTTestTest, NoDifferenceGivesLargeP) {
  const std::vector<double> a = {0.7, 0.8, 0.6, 0.9, 0.75};
  const TestResult result = PairedTTest(a, a).ValueOrDie();
  EXPECT_GE(result.p_value, 0.5);
}

TEST(PairedTTestTest, RejectsBadInput) {
  EXPECT_FALSE(PairedTTest({1.0}, {2.0}).ok());
  EXPECT_FALSE(PairedTTest({1.0, 2.0}, {1.0}).ok());
}

TEST(WilcoxonTest, DetectsConsistentImprovement) {
  Rng rng(3);
  std::vector<double> a(30), b(30);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Uniform();
    b[i] = a[i] + 0.05 + 0.01 * rng.Normal();
  }
  const TestResult result = WilcoxonSignedRank(a, b).ValueOrDie();
  EXPECT_LT(result.p_value, 0.001);
}

TEST(WilcoxonTest, SymmetricDifferencesGiveLargeP) {
  std::vector<double> a(40), b(40);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<double>(i);
    b[i] = a[i] + (i % 2 == 0 ? 0.5 : -0.5);
  }
  const TestResult result = WilcoxonSignedRank(a, b).ValueOrDie();
  EXPECT_GT(result.p_value, 0.3);
}

TEST(WilcoxonTest, RejectsAllZeroDifferences) {
  const std::vector<double> a = {1, 2, 3};
  EXPECT_FALSE(WilcoxonSignedRank(a, a).ok());
}

TEST(BinaryCountsTest, MetricsFromCounts) {
  BinaryCounts counts;
  counts.tp = 8;
  counts.fp = 2;
  counts.fn = 4;
  counts.tn = 6;
  EXPECT_DOUBLE_EQ(counts.Precision(), 0.8);
  EXPECT_NEAR(counts.Recall(), 8.0 / 12.0, 1e-12);
  EXPECT_NEAR(counts.F1(), 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0),
              1e-12);
  EXPECT_DOUBLE_EQ(counts.Accuracy(), 0.7);
}

TEST(BinaryCountsTest, ZeroDenominators) {
  BinaryCounts counts;
  EXPECT_DOUBLE_EQ(counts.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(counts.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(counts.F1(), 0.0);
  EXPECT_DOUBLE_EQ(counts.Accuracy(), 0.0);
}

TEST(CountBinaryTest, TalliesConfusionMatrix) {
  const std::vector<int> truth = {1, 1, 0, 0, 1, 0};
  const std::vector<int> pred = {1, 0, 0, 1, 1, 0};
  const BinaryCounts counts = CountBinary(truth, pred);
  EXPECT_EQ(counts.tp, 2u);
  EXPECT_EQ(counts.fn, 1u);
  EXPECT_EQ(counts.fp, 1u);
  EXPECT_EQ(counts.tn, 2u);
}

}  // namespace
}  // namespace eafe::stats
