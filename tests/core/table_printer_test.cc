#include "core/table_printer.h"

#include <gtest/gtest.h>

namespace eafe {
namespace {

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table({"Dataset", "Score"});
  table.AddRow({"pima", "0.798"});
  table.AddRow({"german credit", "0.816"});
  const std::string out = table.ToString();
  // Header, separator, two rows.
  size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, 4u);
  EXPECT_NE(out.find("| Dataset"), std::string::npos);
  EXPECT_NE(out.find("german credit"), std::string::npos);
  // All lines equally wide (alignment).
  size_t first_line_end = out.find('\n');
  const size_t width = first_line_end;
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t end = out.find('\n', pos);
    EXPECT_EQ(end - pos, width);
    pos = end + 1;
  }
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(0.123456), "0.123");
  EXPECT_EQ(TablePrinter::Num(0.5, 1), "0.5");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

TEST(TablePrinterTest, RowCount) {
  TablePrinter table({"a"});
  EXPECT_EQ(table.row_count(), 0u);
  table.AddRow({"x"});
  table.AddRow({"y"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, WideCellExpandsColumn) {
  TablePrinter table({"h"});
  table.AddRow({"a very long cell value"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("a very long cell value"), std::string::npos);
}

}  // namespace
}  // namespace eafe
