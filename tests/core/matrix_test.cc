#include "core/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace eafe {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, FromRows) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, Identity) {
  const Matrix id = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, TransposeRoundTrip) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
  EXPECT_TRUE(t.Transpose() == m);
}

TEST(MatrixTest, MultiplyMatchesHandComputation) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentityIsNoop) {
  Rng rng(5);
  const Matrix m = Matrix::RandomNormal(4, 4, 1.0, &rng);
  EXPECT_TRUE(m.Multiply(Matrix::Identity(4)) == m);
  EXPECT_TRUE(Matrix::Identity(4).Multiply(m) == m);
}

TEST(MatrixTest, MultiplyVector) {
  const Matrix m = Matrix::FromRows({{1, 0, 2}, {0, 3, 0}});
  const std::vector<double> v = {1, 2, 3};
  const std::vector<double> out = m.MultiplyVector(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 7.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
}

TEST(MatrixTest, ElementwiseOps) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  EXPECT_DOUBLE_EQ(a.Add(b)(1, 1), 12.0);
  EXPECT_DOUBLE_EQ(b.Subtract(a)(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.Hadamard(b)(1, 0), 21.0);
  EXPECT_DOUBLE_EQ(a.Scale(2.0)(0, 1), 4.0);
}

TEST(MatrixTest, AddInPlaceWithAlpha) {
  Matrix a = Matrix::FromRows({{1, 1}});
  const Matrix b = Matrix::FromRows({{2, 4}});
  a.AddInPlace(b, 0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
}

TEST(MatrixTest, SquaredNorm) {
  const Matrix m = Matrix::FromRows({{3, 4}});
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 25.0);
}

TEST(CholeskyTest, FactorizesSpdMatrix) {
  // A = L L^T with known L.
  const Matrix a = Matrix::FromRows({{4, 2}, {2, 5}});
  const Matrix l = Cholesky(a).ValueOrDie();
  EXPECT_DOUBLE_EQ(l(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(l(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(l(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(l(1, 1), 2.0);
}

TEST(CholeskyTest, RejectsNonSpd) {
  const Matrix not_spd = Matrix::FromRows({{1, 2}, {2, 1}});
  EXPECT_FALSE(Cholesky(not_spd).ok());
  const Matrix not_square = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_FALSE(Cholesky(not_square).ok());
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  // Random SPD system: A = B^T B + n I.
  Rng rng(9);
  const Matrix b = Matrix::RandomNormal(6, 6, 1.0, &rng);
  Matrix a = b.Transpose().Multiply(b);
  for (size_t i = 0; i < 6; ++i) a(i, i) += 6.0;
  std::vector<double> x_true(6);
  for (double& v : x_true) v = rng.Normal();
  const std::vector<double> rhs = a.MultiplyVector(x_true);
  const Matrix l = Cholesky(a).ValueOrDie();
  const std::vector<double> x = CholeskySolve(l, rhs);
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(DotTest, MatchesHandComputation) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

}  // namespace
}  // namespace eafe
