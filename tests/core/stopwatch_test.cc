#include "core/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace eafe {
namespace {

TEST(StopwatchTest, ElapsedGrowsMonotonically) {
  Stopwatch watch;
  const double first = watch.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GT(second, first);
}

TEST(StopwatchTest, MillisConsistentWithSeconds) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double seconds = watch.ElapsedSeconds();
  const double millis = watch.ElapsedMillis();
  EXPECT_NEAR(millis, seconds * 1e3, seconds * 1e3 * 0.5 + 1.0);
}

TEST(StopwatchTest, RestartResetsOrigin) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 0.009);
}

TEST(StopwatchTest, MeasuresSleepRoughly) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(watch.ElapsedMillis(), 18.0);
}

}  // namespace
}  // namespace eafe
