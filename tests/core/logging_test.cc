#include "core/logging.h"

#include <gtest/gtest.h>

namespace eafe {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, DefaultLevelIsInfo) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, EmitBelowThresholdDoesNotCrash) {
  SetLogLevel(LogLevel::kError);
  // These are filtered out; the test checks the calls are safe.
  LogDebug("debug %d", 1);
  LogInfo("info %s", "x");
  LogWarning("warning %f", 2.0);
  Log(LogLevel::kInfo, "string form");
}

TEST_F(LoggingTest, EmitAboveThresholdDoesNotCrash) {
  SetLogLevel(LogLevel::kDebug);
  LogDebug("debug");
  LogError("error %d %s", 7, "payload");
  Log(LogLevel::kError, "string form");
}

}  // namespace
}  // namespace eafe
