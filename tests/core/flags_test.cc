#include "core/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace eafe {
namespace {

/// Builds a mutable argv from string literals.
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args)
      : storage_(std::move(args)) {
    pointers_.push_back(const_cast<char*>("program"));
    for (std::string& s : storage_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

FlagParser MakeParser() {
  FlagParser parser;
  parser.AddString("name", "default", "a string flag")
      .AddInt("count", 5, "an int flag")
      .AddDouble("rate", 0.5, "a double flag")
      .AddBool("verbose", false, "a bool flag");
  return parser;
}

TEST(FlagParserTest, DefaultsApply) {
  FlagParser parser = MakeParser();
  ArgvBuilder args({});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(parser.GetString("name"), "default");
  EXPECT_EQ(parser.GetInt("count"), 5);
  EXPECT_DOUBLE_EQ(parser.GetDouble("rate"), 0.5);
  EXPECT_FALSE(parser.GetBool("verbose"));
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser parser = MakeParser();
  ArgvBuilder args({"--name=hello", "--count=9", "--rate=0.25"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(parser.GetString("name"), "hello");
  EXPECT_EQ(parser.GetInt("count"), 9);
  EXPECT_DOUBLE_EQ(parser.GetDouble("rate"), 0.25);
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser parser = MakeParser();
  ArgvBuilder args({"--count", "12", "--name", "world"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(parser.GetInt("count"), 12);
  EXPECT_EQ(parser.GetString("name"), "world");
}

TEST(FlagParserTest, BareBooleanSetsTrue) {
  FlagParser parser = MakeParser();
  ArgvBuilder args({"--verbose"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagParserTest, BooleanExplicitValues) {
  FlagParser parser = MakeParser();
  ArgvBuilder args({"--verbose=true"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(parser.GetBool("verbose"));
  FlagParser parser2 = MakeParser();
  ArgvBuilder args2({"--verbose=0"});
  ASSERT_TRUE(parser2.Parse(args2.argc(), args2.argv()).ok());
  EXPECT_FALSE(parser2.GetBool("verbose"));
}

TEST(FlagParserTest, UnknownFlagFailsLoudly) {
  FlagParser parser = MakeParser();
  ArgvBuilder args({"--no-such-flag=1"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagParserTest, BadIntRejected) {
  FlagParser parser = MakeParser();
  ArgvBuilder args({"--count=abc"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagParserTest, MissingValueRejected) {
  FlagParser parser = MakeParser();
  ArgvBuilder args({"--count"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagParserTest, PositionalRejected) {
  FlagParser parser = MakeParser();
  ArgvBuilder args({"stray"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagParserTest, UsageListsFlags) {
  FlagParser parser = MakeParser();
  const std::string usage = parser.Usage("prog");
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("a double flag"), std::string::npos);
}

TEST(FlagParserTest, HelpReturnsNotFound) {
  FlagParser parser = MakeParser();
  ArgvBuilder args({"--help"});
  const Status status = parser.Parse(args.argc(), args.argv());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace eafe
