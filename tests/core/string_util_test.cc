#include "core/string_util.h"

#include <gtest/gtest.h>

namespace eafe {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t x \n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(ParseDoubleTest, StrictParsing) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").ValueOrDie(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble(" -1e3 ").ValueOrDie(), -1000.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("12x").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(ParseIntTest, StrictParsing) {
  EXPECT_EQ(ParseInt("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt(" -7 ").ValueOrDie(), -7);
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("9z").ok());
}

TEST(StartsWithTest, PrefixChecks) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(ToLowerTest, AsciiLowering) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

}  // namespace
}  // namespace eafe
