#include "core/status.h"

#include <gtest/gtest.h>

namespace eafe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotImplemented),
            "NotImplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> result(7);
  EXPECT_EQ(result.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string value = std::move(result).ValueOrDie();
  EXPECT_EQ(value, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  EAFE_ASSIGN_OR_RETURN(int half, Half(x));
  EAFE_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  EXPECT_EQ(Quarter(8).ValueOrDie(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd.
  EXPECT_FALSE(Quarter(5).ok());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckAll(const std::vector<int>& values) {
  for (int v : values) {
    EAFE_RETURN_NOT_OK(FailIfNegative(v));
  }
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(CheckAll({1, 2, 3}).ok());
  EXPECT_EQ(CheckAll({1, -2, 3}).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace eafe
