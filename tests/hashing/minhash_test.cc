#include "hashing/minhash.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace eafe::hashing {
namespace {

TEST(MixHashTest, DeterministicAndSensitive) {
  EXPECT_EQ(MixHash(1, 2, 3), MixHash(1, 2, 3));
  EXPECT_NE(MixHash(1, 2, 3), MixHash(1, 2, 4));
  EXPECT_NE(MixHash(1, 2, 3), MixHash(1, 3, 3));
  EXPECT_NE(MixHash(1, 2, 3), MixHash(2, 2, 3));
}

TEST(MixUniformTest, InHalfOpenUnitInterval) {
  for (uint64_t i = 0; i < 1000; ++i) {
    const double u = MixUniform(42, i, i * 7 + 1, 3);
    EXPECT_GT(u, 0.0);  // Strictly positive (log-safe).
    EXPECT_LE(u, 1.0);
  }
}

TEST(MixUniformTest, StreamsAreIndependent) {
  size_t equal = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    if (MixUniform(1, i, 5, 1) == MixUniform(1, i, 5, 2)) ++equal;
  }
  EXPECT_EQ(equal, 0u);
}

TEST(MixUniformTest, RoughlyUniform) {
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += MixUniform(7, static_cast<uint64_t>(i), 0, 0);
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(PlainMinHashTest, SelectsFromSupport) {
  // Support = indices with above-mean weight: {2, 3}.
  const std::vector<double> weights = {0.0, 0.0, 1.0, 1.0};
  const std::vector<size_t> selected = PlainMinHashSelect(weights, 32, 11);
  ASSERT_EQ(selected.size(), 32u);
  for (size_t s : selected) {
    EXPECT_TRUE(s == 2 || s == 3);
  }
}

TEST(PlainMinHashTest, AllZeroFallsBackToAllElements) {
  const std::vector<double> weights = {0.0, 0.0, 0.0};
  const std::vector<size_t> selected = PlainMinHashSelect(weights, 64, 3);
  for (size_t s : selected) EXPECT_LT(s, 3u);
}

TEST(PlainMinHashTest, DeterministicInSeed) {
  const std::vector<double> weights = {1, 5, 2, 8, 3};
  EXPECT_EQ(PlainMinHashSelect(weights, 16, 9),
            PlainMinHashSelect(weights, 16, 9));
  EXPECT_NE(PlainMinHashSelect(weights, 16, 9),
            PlainMinHashSelect(weights, 16, 10));
}

TEST(EstimateJaccardTest, AgreementFraction) {
  EXPECT_DOUBLE_EQ(EstimateJaccard({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(EstimateJaccard({1, 2, 3}, {1, 2, 4}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(EstimateJaccard({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(EstimateJaccard({}, {}), 0.0);
}

TEST(GeneralizedJaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(GeneralizedJaccard({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(GeneralizedJaccard({1, 0}, {0, 1}), 0.0);
  // min-sum = 1 + 1 = 2, max-sum = 2 + 3 = 5.
  EXPECT_DOUBLE_EQ(GeneralizedJaccard({1, 3}, {2, 1}), 0.4);
  EXPECT_DOUBLE_EQ(GeneralizedJaccard({0, 0}, {0, 0}), 1.0);
}

TEST(PlainMinHashTest, JaccardEstimateTracksSetOverlap) {
  // Two binary sets with known Jaccard 1/3 (overlap 20 of 60).
  const size_t n = 200;
  std::vector<double> a(n, 0.0), b(n, 0.0);
  for (size_t i = 0; i < 40; ++i) a[i] = 1.0;
  for (size_t i = 20; i < 60; ++i) b[i] = 1.0;
  const size_t slots = 512;
  const auto sel_a = PlainMinHashSelect(a, slots, 5);
  const auto sel_b = PlainMinHashSelect(b, slots, 5);
  EXPECT_NEAR(EstimateJaccard(sel_a, sel_b), 1.0 / 3.0, 0.08);
}

}  // namespace
}  // namespace eafe::hashing
