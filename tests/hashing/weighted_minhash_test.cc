#include "hashing/weighted_minhash.h"

#include <gtest/gtest.h>

#include <map>

#include "core/rng.h"
#include "hashing/minhash.h"

namespace eafe::hashing {
namespace {

TEST(SchemeStringTest, RoundTrip) {
  for (MinHashScheme scheme : AllMinHashSchemes()) {
    const std::string name = MinHashSchemeToString(scheme);
    EXPECT_EQ(MinHashSchemeFromString(name).ValueOrDie(), scheme) << name;
  }
  EXPECT_EQ(MinHashSchemeFromString("0bit").ValueOrDie(),
            MinHashScheme::kLicws);
  EXPECT_FALSE(MinHashSchemeFromString("nope").ok());
}

TEST(SchemeListTest, ContainsAllSchemes) {
  // 5 hashing schemes + the exact-quantile baseline.
  EXPECT_EQ(AllMinHashSchemes().size(), 6u);
}

TEST(ExactQuantileTest, SelectsRanksInOrder) {
  // Weights 0..9: quantile selection picks evenly spaced ranks.
  std::vector<double> weights(10);
  for (size_t i = 0; i < 10; ++i) weights[i] = static_cast<double>(i);
  const auto selected = WeightedMinHashSelect(
      MinHashScheme::kExactQuantile, weights, 5, 0);
  ASSERT_EQ(selected.size(), 5u);
  // Slots map to ranks 1, 3, 5, 7, 9 of the sorted order == indices.
  EXPECT_EQ(selected[0], 1u);
  EXPECT_EQ(selected[2], 5u);
  EXPECT_EQ(selected[4], 9u);
  // Deterministic and seed-independent.
  EXPECT_EQ(selected, WeightedMinHashSelect(
      MinHashScheme::kExactQuantile, weights, 5, 999));
}

TEST(ExactQuantileTest, StringRoundTrip) {
  EXPECT_EQ(MinHashSchemeFromString("quantile").ValueOrDie(),
            MinHashScheme::kExactQuantile);
  EXPECT_EQ(MinHashSchemeToString(MinHashScheme::kExactQuantile),
            "quantile");
}

class CwsSchemeTest : public ::testing::TestWithParam<MinHashScheme> {};

TEST_P(CwsSchemeTest, DeterministicInSeedAndSlot) {
  const std::vector<double> weights = {0.2, 0.9, 0.1, 0.5, 0.7};
  const CwsSample a = ConsistentSample(GetParam(), weights, 3, 77);
  const CwsSample b = ConsistentSample(GetParam(), weights, 3, 77);
  EXPECT_EQ(a.element, b.element);
  EXPECT_EQ(a.quantization, b.quantization);
}

TEST_P(CwsSchemeTest, IgnoresZeroWeightElements) {
  const std::vector<double> weights = {0.0, 0.0, 1.0, 0.0};
  for (size_t slot = 0; slot < 32; ++slot) {
    const CwsSample s = ConsistentSample(GetParam(), weights, slot, 5);
    EXPECT_EQ(s.element, 2u);
  }
}

TEST_P(CwsSchemeTest, SelectionFrequencyTracksWeight) {
  // In ideal consistent weighted sampling, P(select k) = w_k / sum(w).
  // ICWS realizes this exactly; the cheaper variants (PCWS, CCWS) are
  // approximations with a mild bias, hence the loose tolerance.
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::map<size_t, size_t> counts;
  const size_t slots = 3000;
  const auto selected = WeightedMinHashSelect(GetParam(), weights, slots, 7);
  for (size_t s : selected) ++counts[s];
  EXPECT_NEAR(static_cast<double>(counts[0]) / slots, 0.1, 0.06);
  EXPECT_NEAR(static_cast<double>(counts[1]) / slots, 0.3, 0.08);
  EXPECT_NEAR(static_cast<double>(counts[2]) / slots, 0.6, 0.08);
}

TEST_P(CwsSchemeTest, SimilarWeightsGiveSimilarSelections) {
  // Consistency: the estimated similarity of (a, a) is 1 and of nearly
  // identical vectors is close to their generalized Jaccard.
  Rng rng(13);
  std::vector<double> a(100);
  for (double& v : a) v = rng.Uniform(0.1, 1.0);
  std::vector<double> b = a;
  for (double& v : b) v *= rng.Uniform(0.95, 1.05);

  const size_t slots = 256;
  const auto sel_a = WeightedMinHashSelect(GetParam(), a, slots, 3);
  const auto sel_a2 = WeightedMinHashSelect(GetParam(), a, slots, 3);
  EXPECT_DOUBLE_EQ(EstimateJaccard(sel_a, sel_a2), 1.0);

  const auto sel_b = WeightedMinHashSelect(GetParam(), b, slots, 3);
  const double truth = GeneralizedJaccard(a, b);
  EXPECT_GT(truth, 0.9);
  EXPECT_NEAR(EstimateJaccard(sel_a, sel_b), truth, 0.12);
}

TEST_P(CwsSchemeTest, DisjointSupportsNeverAgree) {
  std::vector<double> a(40, 0.0), b(40, 0.0);
  for (size_t i = 0; i < 20; ++i) a[i] = 1.0;
  for (size_t i = 20; i < 40; ++i) b[i] = 1.0;
  const auto sel_a = WeightedMinHashSelect(GetParam(), a, 128, 9);
  const auto sel_b = WeightedMinHashSelect(GetParam(), b, 128, 9);
  EXPECT_DOUBLE_EQ(EstimateJaccard(sel_a, sel_b), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    WeightedSchemes, CwsSchemeTest,
    ::testing::Values(MinHashScheme::kIcws, MinHashScheme::kCcws,
                      MinHashScheme::kPcws, MinHashScheme::kLicws),
    [](const ::testing::TestParamInfo<MinHashScheme>& param_info) {
      return MinHashSchemeToString(param_info.param);
    });

TEST(WeightedMinHashTest, EstimateTracksGeneralizedJaccardAtMidRange) {
  // Property check of Eq. 2 at a mid-similarity point for the paper's
  // default scheme (CCWS estimates are approximate but must correlate).
  Rng rng(21);
  std::vector<double> a(80), b(80);
  for (size_t i = 0; i < 80; ++i) {
    a[i] = rng.Uniform(0.0, 1.0);
    b[i] = i < 40 ? a[i] : rng.Uniform(0.0, 1.0);
  }
  const double truth = GeneralizedJaccard(a, b);
  const auto sel_a =
      WeightedMinHashSelect(MinHashScheme::kCcws, a, 1024, 31);
  const auto sel_b =
      WeightedMinHashSelect(MinHashScheme::kCcws, b, 1024, 31);
  EXPECT_NEAR(EstimateJaccard(sel_a, sel_b), truth, 0.15);
}

TEST(WeightedMinHashTest, AllZeroWeightsFallBack) {
  const std::vector<double> weights(10, 0.0);
  const auto selected =
      WeightedMinHashSelect(MinHashScheme::kIcws, weights, 32, 5);
  ASSERT_EQ(selected.size(), 32u);
  for (size_t s : selected) EXPECT_LT(s, 10u);
}

TEST(WeightedMinHashTest, LicwsDropsQuantization) {
  const std::vector<double> weights = {0.3, 0.6, 0.9};
  for (size_t slot = 0; slot < 16; ++slot) {
    const CwsSample s =
        ConsistentSample(MinHashScheme::kLicws, weights, slot, 3);
    EXPECT_EQ(s.quantization, 0);
  }
}

TEST(WeightedMinHashTest, SchemesDiffer) {
  Rng rng(33);
  std::vector<double> weights(60);
  for (double& v : weights) v = rng.Uniform(0.1, 1.0);
  const auto icws =
      WeightedMinHashSelect(MinHashScheme::kIcws, weights, 64, 5);
  const auto ccws =
      WeightedMinHashSelect(MinHashScheme::kCcws, weights, 64, 5);
  EXPECT_NE(icws, ccws);
}

}  // namespace
}  // namespace eafe::hashing
