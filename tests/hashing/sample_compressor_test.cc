#include "hashing/sample_compressor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/rng.h"
#include "hashing/minhash.h"

namespace eafe::hashing {
namespace {

std::vector<double> RandomFeature(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (double& v : values) v = rng.Normal(2.0, 3.0);
  return values;
}

TEST(SampleCompressorTest, FixedOutputDimensionForAnyInputSize) {
  CompressorOptions options;
  options.dimension = 48;
  SampleCompressor compressor(options);
  for (size_t n : {10u, 100u, 1000u, 7777u}) {
    const auto signature =
        compressor.Compress(RandomFeature(n, n)).ValueOrDie();
    EXPECT_EQ(signature.size(), 48u) << n;
  }
}

TEST(SampleCompressorTest, SignatureValuesAreNormalizedWeights) {
  SampleCompressor compressor;
  const auto signature =
      compressor.Compress(RandomFeature(500, 3)).ValueOrDie();
  for (double v : signature) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SampleCompressorTest, SortedSignatureByDefault) {
  SampleCompressor compressor;
  const auto signature =
      compressor.Compress(RandomFeature(300, 5)).ValueOrDie();
  EXPECT_TRUE(std::is_sorted(signature.begin(), signature.end()));
}

TEST(SampleCompressorTest, UnsortedWhenDisabled) {
  CompressorOptions options;
  options.sort_signature = false;
  options.dimension = 64;
  SampleCompressor compressor(options);
  const auto values = RandomFeature(300, 7);
  const auto signature = compressor.Compress(values).ValueOrDie();
  const auto indices = compressor.SelectIndices(values).ValueOrDie();
  const auto weights = SampleCompressor::NormalizeWeights(values);
  for (size_t j = 0; j < signature.size(); ++j) {
    EXPECT_DOUBLE_EQ(signature[j], weights[indices[j]]);
  }
}

TEST(SampleCompressorTest, DeterministicInSeed) {
  const auto values = RandomFeature(200, 9);
  SampleCompressor a;
  SampleCompressor b;
  EXPECT_EQ(a.Compress(values).ValueOrDie(),
            b.Compress(values).ValueOrDie());
  CompressorOptions other;
  other.seed = 999;
  SampleCompressor c(other);
  EXPECT_NE(a.Compress(values).ValueOrDie(),
            c.Compress(values).ValueOrDie());
}

TEST(SampleCompressorTest, NormalizeWeightsMapsToUnitInterval) {
  const auto weights =
      SampleCompressor::NormalizeWeights({-4.0, 0.0, 4.0});
  EXPECT_DOUBLE_EQ(weights[0], 0.0);
  EXPECT_DOUBLE_EQ(weights[1], 0.5);
  EXPECT_DOUBLE_EQ(weights[2], 1.0);
}

TEST(SampleCompressorTest, ConstantFeatureGetsUniformWeights) {
  const auto weights = SampleCompressor::NormalizeWeights({5.0, 5.0, 5.0});
  for (double w : weights) EXPECT_DOUBLE_EQ(w, 1.0);
  // And compresses without error.
  SampleCompressor compressor;
  EXPECT_TRUE(compressor.Compress({5.0, 5.0, 5.0, 5.0}).ok());
}

TEST(SampleCompressorTest, SimilarityPreservation) {
  // Eq. 2: |sim(D1, D2) - sim(compressed)| < epsilon. Scaled copies of the
  // same feature (identical after min-max normalization) must estimate
  // similarity ~1; independent features must estimate low similarity.
  SampleCompressor compressor;
  const auto base = RandomFeature(400, 11);
  std::vector<double> scaled(base.size());
  for (size_t i = 0; i < base.size(); ++i) scaled[i] = 2.0 * base[i] + 7.0;
  EXPECT_DOUBLE_EQ(
      compressor.EstimateSimilarity(base, scaled).ValueOrDie(), 1.0);

  const auto other = RandomFeature(400, 12);
  const auto weights_a = SampleCompressor::NormalizeWeights(base);
  const auto weights_b = SampleCompressor::NormalizeWeights(other);
  const double truth = GeneralizedJaccard(weights_a, weights_b);
  const double estimate =
      compressor.EstimateSimilarity(base, other).ValueOrDie();
  EXPECT_NEAR(estimate, truth, 0.2);
}

TEST(SampleCompressorTest, CompressFramePerColumn) {
  data::DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(
      data::Column("a", RandomFeature(100, 13))).ok());
  ASSERT_TRUE(frame.AddColumn(
      data::Column("b", RandomFeature(100, 14))).ok());
  CompressorOptions options;
  options.dimension = 16;
  SampleCompressor compressor(options);
  const data::DataFrame compressed =
      compressor.CompressFrame(frame).ValueOrDie();
  EXPECT_EQ(compressed.num_rows(), 16u);
  EXPECT_EQ(compressed.ColumnNames(), frame.ColumnNames());
}

TEST(SampleCompressorTest, ErrorsOnBadInput) {
  SampleCompressor compressor;
  EXPECT_FALSE(compressor.Compress({}).ok());
  EXPECT_FALSE(
      compressor.Compress({1.0, std::numeric_limits<double>::quiet_NaN()})
          .ok());
  EXPECT_FALSE(compressor.EstimateSimilarity({1.0}, {1.0, 2.0}).ok());
}

TEST(SampleCompressorTest, AllSchemesCompress) {
  const auto values = RandomFeature(150, 17);
  for (MinHashScheme scheme : AllMinHashSchemes()) {
    CompressorOptions options;
    options.scheme = scheme;
    options.dimension = 24;
    SampleCompressor compressor(options);
    const auto signature = compressor.Compress(values);
    ASSERT_TRUE(signature.ok()) << MinHashSchemeToString(scheme);
    EXPECT_EQ(signature->size(), 24u);
  }
}

}  // namespace
}  // namespace eafe::hashing
