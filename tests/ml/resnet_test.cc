#include "ml/resnet.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "tests/ml/test_util.h"

namespace eafe::ml {
namespace {

using testing::LabelAccuracy;
using testing::MakeSeparable;
using testing::MakeSmoothRegression;
using testing::MakeXor;

TEST(TabularResNetTest, LearnsSeparable) {
  const data::Dataset dataset = MakeSeparable(300, 1);
  TabularResNet model;
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.9);
}

TEST(TabularResNetTest, LearnsXor) {
  const data::Dataset dataset = MakeXor(400, 2);
  TabularResNet::Options options;
  options.epochs = 150;
  TabularResNet model(options);
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.85);
}

TEST(TabularResNetTest, Regression) {
  const data::Dataset dataset = MakeSmoothRegression(300, 3);
  TabularResNet::Options options;
  options.task = data::TaskType::kRegression;
  options.epochs = 120;
  TabularResNet model(options);
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(OneMinusRae(dataset.labels, pred), 0.7);
}

TEST(TabularResNetTest, RepresentationShapeAndUsefulness) {
  // The RTDL_N construction: ResNet representation feeding an RF head.
  const data::Dataset dataset = MakeXor(300, 4);
  TabularResNet::Options options;
  options.width = 16;
  options.epochs = 100;
  TabularResNet model(options);
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const data::DataFrame repr =
      model.ExtractRepresentation(dataset.features).ValueOrDie();
  EXPECT_EQ(repr.num_rows(), dataset.num_rows());
  EXPECT_EQ(repr.num_columns(), 16u);

  RandomForest rf;
  ASSERT_TRUE(rf.Fit(repr, dataset.labels).ok());
  const auto pred = rf.Predict(repr).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.9);
}

TEST(TabularResNetTest, DeterministicGivenSeed) {
  const data::Dataset dataset = MakeSeparable(100, 5);
  TabularResNet a, b;
  ASSERT_TRUE(a.Fit(dataset.features, dataset.labels).ok());
  ASSERT_TRUE(b.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(a.Predict(dataset.features).ValueOrDie(),
            b.Predict(dataset.features).ValueOrDie());
}

TEST(TabularResNetTest, ErrorsOnBadInput) {
  TabularResNet model;
  data::DataFrame x;
  ASSERT_TRUE(x.AddColumn(data::Column("f", {1, 2})).ok());
  EXPECT_FALSE(model.Predict(x).ok());
  EXPECT_FALSE(model.ExtractRepresentation(x).ok());
  EXPECT_FALSE(model.Fit(x, {1.0}).ok());
}

TEST(TabularResNetTest, ZeroBlocksIsLinearStemPlusHead) {
  const data::Dataset dataset = MakeSeparable(200, 6);
  TabularResNet::Options options;
  options.num_blocks = 0;
  TabularResNet model(options);
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.9);
}

}  // namespace
}  // namespace eafe::ml
