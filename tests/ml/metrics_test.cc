#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace eafe::ml {
namespace {

TEST(AccuracyTest, Basic) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1, 0}, {1, 0, 0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 1}, {1, 1}), 1.0);
}

TEST(F1WeightedTest, PerfectPrediction) {
  EXPECT_DOUBLE_EQ(F1Weighted({0, 1, 0, 1}, {0, 1, 0, 1}), 1.0);
}

TEST(F1WeightedTest, KnownBinaryCase) {
  // truth:  1 1 1 0 0 0 ; pred: 1 1 0 0 0 1.
  // class 1: tp=2 fp=1 fn=1 -> P=2/3, R=2/3, F1=2/3.
  // class 0: tp=2 fp=1 fn=1 -> F1=2/3.  Weighted = 2/3.
  const std::vector<double> truth = {1, 1, 1, 0, 0, 0};
  const std::vector<double> pred = {1, 1, 0, 0, 0, 1};
  EXPECT_NEAR(F1Weighted(truth, pred), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(F1Macro(truth, pred), 2.0 / 3.0, 1e-12);
}

TEST(F1WeightedTest, ImbalancedWeighting) {
  // 9 of class 0 predicted perfectly, 1 of class 1 missed.
  std::vector<double> truth(10, 0.0);
  truth[9] = 1.0;
  std::vector<double> pred(10, 0.0);
  // class 0: tp=9, fp=1, fn=0 -> F1 = 18/19. class 1: F1 = 0.
  const double expected_weighted = 0.9 * (18.0 / 19.0);
  EXPECT_NEAR(F1Weighted(truth, pred), expected_weighted, 1e-12);
  // Macro averages equally: (18/19 + 0) / 2.
  EXPECT_NEAR(F1Macro(truth, pred), 0.5 * 18.0 / 19.0, 1e-12);
}

TEST(F1Test, MultiClass) {
  const std::vector<double> truth = {0, 1, 2, 0, 1, 2};
  const std::vector<double> pred = {0, 1, 2, 0, 1, 2};
  EXPECT_DOUBLE_EQ(F1Weighted(truth, pred), 1.0);
  EXPECT_DOUBLE_EQ(F1Macro(truth, pred), 1.0);
}

TEST(F1Test, EmptyInput) {
  EXPECT_DOUBLE_EQ(F1Weighted({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(F1Macro({}, {}), 0.0);
}

TEST(OneMinusRaeTest, PerfectPredictionGivesOne) {
  const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(OneMinusRae(y, y), 1.0);
}

TEST(OneMinusRaeTest, MeanPredictorGivesZero) {
  const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(OneMinusRae(y, mean_pred), 0.0, 1e-12);
}

TEST(OneMinusRaeTest, WorseThanMeanIsNegative) {
  const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> bad = {10.0, -10.0, 10.0, -10.0};
  EXPECT_LT(OneMinusRae(y, bad), 0.0);
}

TEST(OneMinusRaeTest, ConstantTargetEdgeCase) {
  const std::vector<double> y = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(OneMinusRae(y, y), 1.0);
  EXPECT_DOUBLE_EQ(OneMinusRae(y, {1.0, 2.0, 3.0}), 0.0);
}

TEST(MseTest, KnownValue) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1, 2}, {3, 2}), 2.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError({}, {}), 0.0);
}

TEST(TaskScoreTest, DispatchesByTask) {
  const std::vector<double> truth = {0, 1, 0, 1};
  const std::vector<double> pred = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(
      TaskScore(data::TaskType::kClassification, truth, pred), 1.0);
  EXPECT_DOUBLE_EQ(TaskScore(data::TaskType::kRegression, truth, pred),
                   1.0);
  // Regression scoring differs from F1 for imperfect predictions.
  const std::vector<double> off = {0.1, 0.9, 0.1, 0.9};
  EXPECT_GT(TaskScore(data::TaskType::kRegression, truth, off), 0.5);
}

}  // namespace
}  // namespace eafe::ml
