#include "ml/evaluator.h"

#include <gtest/gtest.h>

#include "ml/gaussian_process.h"
#include "ml/naive_bayes.h"
#include "tests/ml/test_util.h"

namespace eafe::ml {
namespace {

using testing::MakeSeparable;
using testing::MakeSmoothRegression;

TEST(ModelKindTest, StringRoundTrip) {
  for (ModelKind kind :
       {ModelKind::kRandomForest, ModelKind::kDecisionTree,
        ModelKind::kGradientBoostedTrees, ModelKind::kLogisticRegression,
        ModelKind::kLinearSvm, ModelKind::kNaiveBayesOrGp, ModelKind::kMlp,
        ModelKind::kResNet}) {
    const std::string name = ModelKindToString(kind);
    EXPECT_EQ(ModelKindFromString(name).ValueOrDie(), kind) << name;
  }
  EXPECT_FALSE(ModelKindFromString("bogus").ok());
}

TEST(TaskEvaluatorTest, ScoresClassification) {
  const data::Dataset dataset = MakeSeparable(200, 1);
  TaskEvaluator evaluator;
  const double score = evaluator.Score(dataset).ValueOrDie();
  EXPECT_GT(score, 0.8);
  EXPECT_LE(score, 1.0);
}

TEST(TaskEvaluatorTest, ScoresRegression) {
  const data::Dataset dataset = MakeSmoothRegression(200, 2);
  TaskEvaluator evaluator;
  const double score = evaluator.Score(dataset).ValueOrDie();
  EXPECT_GT(score, 0.3);
}

TEST(TaskEvaluatorTest, CountsEvaluations) {
  const data::Dataset dataset = MakeSeparable(100, 3);
  TaskEvaluator evaluator;
  EXPECT_EQ(evaluator.evaluation_count(), 0u);
  ASSERT_TRUE(evaluator.Score(dataset).ok());
  ASSERT_TRUE(evaluator.Score(dataset).ok());
  EXPECT_EQ(evaluator.evaluation_count(), 2u);
  evaluator.ResetEvaluationCount();
  EXPECT_EQ(evaluator.evaluation_count(), 0u);
}

TEST(TaskEvaluatorTest, DeterministicScore) {
  const data::Dataset dataset = MakeSeparable(150, 4);
  TaskEvaluator evaluator;
  EXPECT_DOUBLE_EQ(evaluator.Score(dataset).ValueOrDie(),
                   evaluator.Score(dataset).ValueOrDie());
}

TEST(TaskEvaluatorTest, NaiveBayesOrGpDispatchesByTask) {
  EvaluatorOptions options;
  options.model = ModelKind::kNaiveBayesOrGp;
  TaskEvaluator evaluator(options);
  auto cls = evaluator.CreateModel(data::TaskType::kClassification);
  EXPECT_NE(dynamic_cast<GaussianNaiveBayes*>(cls.get()), nullptr);
  auto reg = evaluator.CreateModel(data::TaskType::kRegression);
  EXPECT_NE(dynamic_cast<GaussianProcessRegressor*>(reg.get()), nullptr);
}

class EvaluatorModelKindTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(EvaluatorModelKindTest, EveryModelKindScoresBothTasks) {
  EvaluatorOptions options;
  options.model = GetParam();
  options.cv_folds = 3;
  options.nn_epochs = 10;
  options.linear_epochs = 20;
  TaskEvaluator evaluator(options);

  const data::Dataset cls = MakeSeparable(90, 5);
  const auto cls_score = evaluator.Score(cls);
  ASSERT_TRUE(cls_score.ok()) << cls_score.status().ToString();
  EXPECT_GE(*cls_score, 0.0);
  EXPECT_LE(*cls_score, 1.0);

  const data::Dataset reg = MakeSmoothRegression(90, 6);
  const auto reg_score = evaluator.Score(reg);
  ASSERT_TRUE(reg_score.ok()) << reg_score.status().ToString();
  EXPECT_LE(*reg_score, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, EvaluatorModelKindTest,
    ::testing::Values(ModelKind::kRandomForest, ModelKind::kDecisionTree,
                      ModelKind::kGradientBoostedTrees,
                      ModelKind::kLogisticRegression, ModelKind::kLinearSvm,
                      ModelKind::kNaiveBayesOrGp, ModelKind::kMlp,
                      ModelKind::kResNet),
    [](const ::testing::TestParamInfo<ModelKind>& param_info) {
      return ModelKindToString(param_info.param);
    });

}  // namespace
}  // namespace eafe::ml
