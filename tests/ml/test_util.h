#ifndef EAFE_TESTS_ML_TEST_UTIL_H_
#define EAFE_TESTS_ML_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"
#include "data/dataframe.h"

namespace eafe::ml::testing {

/// Linearly separable binary classification data: label = x0 + x1 > 0.
inline data::Dataset MakeSeparable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x0(n), x1(n), noise(n), labels(n);
  for (size_t i = 0; i < n; ++i) {
    x0[i] = rng.Normal();
    x1[i] = rng.Normal();
    noise[i] = rng.Normal();
    labels[i] = x0[i] + x1[i] > 0.0 ? 1.0 : 0.0;
  }
  data::Dataset dataset;
  dataset.name = "separable";
  dataset.task = data::TaskType::kClassification;
  EXPECT_TRUE(dataset.features.AddColumn(data::Column("x0", x0)).ok());
  EXPECT_TRUE(dataset.features.AddColumn(data::Column("x1", x1)).ok());
  EXPECT_TRUE(dataset.features.AddColumn(data::Column("noise", noise)).ok());
  dataset.labels = labels;
  return dataset;
}

/// XOR-style data that linear models cannot separate but trees can:
/// label = (x0 > 0) != (x1 > 0).
inline data::Dataset MakeXor(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x0(n), x1(n), labels(n);
  for (size_t i = 0; i < n; ++i) {
    x0[i] = rng.Uniform(-1.0, 1.0);
    x1[i] = rng.Uniform(-1.0, 1.0);
    labels[i] = (x0[i] > 0.0) != (x1[i] > 0.0) ? 1.0 : 0.0;
  }
  data::Dataset dataset;
  dataset.name = "xor";
  dataset.task = data::TaskType::kClassification;
  EXPECT_TRUE(dataset.features.AddColumn(data::Column("x0", x0)).ok());
  EXPECT_TRUE(dataset.features.AddColumn(data::Column("x1", x1)).ok());
  dataset.labels = labels;
  return dataset;
}

/// Smooth regression data: y = sin(2 x0) + 0.5 x1 + noise.
inline data::Dataset MakeSmoothRegression(size_t n, uint64_t seed,
                                          double noise_sd = 0.05) {
  Rng rng(seed);
  std::vector<double> x0(n), x1(n), labels(n);
  for (size_t i = 0; i < n; ++i) {
    x0[i] = rng.Uniform(-2.0, 2.0);
    x1[i] = rng.Uniform(-2.0, 2.0);
    labels[i] =
        std::sin(2.0 * x0[i]) + 0.5 * x1[i] + rng.Normal(0.0, noise_sd);
  }
  data::Dataset dataset;
  dataset.name = "smooth";
  dataset.task = data::TaskType::kRegression;
  EXPECT_TRUE(dataset.features.AddColumn(data::Column("x0", x0)).ok());
  EXPECT_TRUE(dataset.features.AddColumn(data::Column("x1", x1)).ok());
  dataset.labels = labels;
  return dataset;
}

/// Linear regression data: y = 2 x0 - x1 + 0.5.
inline data::Dataset MakeLinearRegression(size_t n, uint64_t seed,
                                          double noise_sd = 0.01) {
  Rng rng(seed);
  std::vector<double> x0(n), x1(n), labels(n);
  for (size_t i = 0; i < n; ++i) {
    x0[i] = rng.Normal();
    x1[i] = rng.Normal();
    labels[i] = 2.0 * x0[i] - x1[i] + 0.5 + rng.Normal(0.0, noise_sd);
  }
  data::Dataset dataset;
  dataset.name = "linear";
  dataset.task = data::TaskType::kRegression;
  EXPECT_TRUE(dataset.features.AddColumn(data::Column("x0", x0)).ok());
  EXPECT_TRUE(dataset.features.AddColumn(data::Column("x1", x1)).ok());
  dataset.labels = labels;
  return dataset;
}

/// Three-class Gaussian blobs at (-3,0), (3,0), (0,4).
inline data::Dataset MakeBlobs(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x0(n), x1(n), labels(n);
  const double cx[3] = {-3.0, 3.0, 0.0};
  const double cy[3] = {0.0, 0.0, 4.0};
  for (size_t i = 0; i < n; ++i) {
    const size_t cls = i % 3;
    x0[i] = cx[cls] + rng.Normal(0.0, 0.6);
    x1[i] = cy[cls] + rng.Normal(0.0, 0.6);
    labels[i] = static_cast<double>(cls);
  }
  data::Dataset dataset;
  dataset.name = "blobs";
  dataset.task = data::TaskType::kClassification;
  EXPECT_TRUE(dataset.features.AddColumn(data::Column("x0", x0)).ok());
  EXPECT_TRUE(dataset.features.AddColumn(data::Column("x1", x1)).ok());
  dataset.labels = labels;
  return dataset;
}

/// Fraction of matching integer predictions.
inline double LabelAccuracy(const std::vector<double>& truth,
                            const std::vector<double>& predicted) {
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    correct += static_cast<int>(truth[i]) == static_cast<int>(predicted[i]);
  }
  return truth.empty() ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(truth.size());
}

}  // namespace eafe::ml::testing

#endif  // EAFE_TESTS_ML_TEST_UTIL_H_
