#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "tests/ml/test_util.h"

namespace eafe::ml {
namespace {

using testing::LabelAccuracy;
using testing::MakeSeparable;
using testing::MakeSmoothRegression;
using testing::MakeXor;

TEST(DecisionTreeTest, XorIsHardForGreedySplits) {
  // Pure XOR has zero first-split Gini gain for any threshold; a single
  // greedy tree only improves via sampling noise. Documented behaviour:
  // clearly better than chance, clearly below the forest's accuracy.
  const data::Dataset dataset = MakeXor(400, 1);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(dataset.features, dataset.labels).ok());
  const auto pred = tree.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.6);
}

TEST(DecisionTreeTest, LearnsHierarchicalPattern) {
  // label = x0 > 0 ? (x1 > 0.3) : 0 — greedy splits find this exactly.
  Rng rng(12);
  const size_t n = 400;
  std::vector<double> x0(n), x1(n), labels(n);
  for (size_t i = 0; i < n; ++i) {
    x0[i] = rng.Uniform(-1.0, 1.0);
    x1[i] = rng.Uniform(-1.0, 1.0);
    labels[i] = x0[i] > 0.0 && x1[i] > 0.3 ? 1.0 : 0.0;
  }
  data::DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(data::Column("x0", x0)).ok());
  ASSERT_TRUE(frame.AddColumn(data::Column("x1", x1)).ok());
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(frame, labels).ok());
  const auto pred = tree.Predict(frame).ValueOrDie();
  EXPECT_GT(LabelAccuracy(labels, pred), 0.97);
  EXPECT_GT(tree.node_count(), 3u);
}

TEST(DecisionTreeTest, LearnsSeparable) {
  const data::Dataset dataset = MakeSeparable(300, 2);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(dataset.features, dataset.labels).ok());
  const auto pred = tree.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.9);
}

TEST(DecisionTreeTest, RegressionFitsSmoothFunction) {
  const data::Dataset dataset = MakeSmoothRegression(500, 3);
  DecisionTree::Options options;
  options.task = data::TaskType::kRegression;
  options.max_depth = 10;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Fit(dataset.features, dataset.labels).ok());
  const auto pred = tree.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(OneMinusRae(dataset.labels, pred), 0.8);
}

TEST(DecisionTreeTest, DepthZeroIsMajorityStump) {
  const data::Dataset dataset = MakeSeparable(100, 4);
  DecisionTree::Options options;
  options.max_depth = 0;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(tree.node_count(), 1u);
  const auto pred = tree.Predict(dataset.features).ValueOrDie();
  // All predictions identical (the majority class).
  for (double p : pred) EXPECT_DOUBLE_EQ(p, pred[0]);
}

TEST(DecisionTreeTest, PureNodeStopsSplitting) {
  data::DataFrame x;
  ASSERT_TRUE(x.AddColumn(data::Column("f", {1, 2, 3, 4})).ok());
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, {1, 1, 1, 1}).ok());
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTreeTest, ConstantFeatureCannotSplit) {
  data::DataFrame x;
  ASSERT_TRUE(x.AddColumn(data::Column("c", {5, 5, 5, 5, 5, 5})).ok());
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, {0, 1, 0, 1, 0, 1}).ok());
  EXPECT_EQ(tree.node_count(), 1u);  // No usable split.
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  const data::Dataset dataset = MakeXor(200, 5);
  DecisionTree::Options options;
  options.min_samples_leaf = 50;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Fit(dataset.features, dataset.labels).ok());
  // 200 samples with >= 50 per leaf allows at most 4 leaves (7 nodes).
  EXPECT_LE(tree.node_count(), 7u);
}

TEST(DecisionTreeTest, PredictProbaInUnitInterval) {
  const data::Dataset dataset = MakeXor(200, 6);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(dataset.features, dataset.labels).ok());
  const auto proba = tree.PredictProba(dataset.features).ValueOrDie();
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(DecisionTreeTest, FeatureImportancesIdentifySignal) {
  const data::Dataset dataset = MakeSeparable(400, 7);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(dataset.features, dataset.labels).ok());
  const auto& imp = tree.feature_importances();
  ASSERT_EQ(imp.size(), 3u);
  // x0 and x1 carry the signal; the noise column should matter least.
  EXPECT_GT(imp[0] + imp[1], imp[2]);
}

TEST(DecisionTreeTest, ErrorsOnBadInput) {
  DecisionTree tree;
  data::DataFrame empty;
  EXPECT_FALSE(tree.Fit(empty, {}).ok());
  data::DataFrame x;
  ASSERT_TRUE(x.AddColumn(data::Column("f", {1, 2})).ok());
  EXPECT_FALSE(tree.Fit(x, {1.0}).ok());  // Length mismatch.
  EXPECT_FALSE(tree.Predict(x).ok());     // Not fitted.
}

TEST(DecisionTreeTest, PredictRejectsWrongWidth) {
  const data::Dataset dataset = MakeXor(50, 8);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(dataset.features, dataset.labels).ok());
  data::DataFrame narrow;
  ASSERT_TRUE(narrow.AddColumn(data::Column("x0", {0.5})).ok());
  EXPECT_FALSE(tree.Predict(narrow).ok());
}

TEST(DecisionTreeTest, DeterministicGivenSeed) {
  const data::Dataset dataset = MakeXor(200, 9);
  DecisionTree::Options options;
  options.max_features = 1;
  options.seed = 42;
  DecisionTree a(options), b(options);
  ASSERT_TRUE(a.Fit(dataset.features, dataset.labels).ok());
  ASSERT_TRUE(b.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(a.Predict(dataset.features).ValueOrDie(),
            b.Predict(dataset.features).ValueOrDie());
}

}  // namespace
}  // namespace eafe::ml
