#include <gtest/gtest.h>

#include <vector>

#include "data/dataframe.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/feature_binner.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "runtime/thread_pool.h"
#include "tests/ml/test_util.h"

namespace eafe::ml {
namespace {

using testing::LabelAccuracy;
using testing::MakeBlobs;
using testing::MakeXor;

/// Classification data whose values live on a small integer grid. Every
/// column has exactly `grid` distinct values, so with n large every
/// bootstrap sample contains all of them and a per-tree binner computes
/// the same cuts as the shared full-frame binner — the basis of the
/// shared-vs-per-tree identity test.
data::Dataset MakeQuantized(size_t n, size_t columns, uint64_t seed,
                            size_t grid = 5) {
  Rng rng(seed);
  data::Dataset dataset;
  dataset.name = "quantized";
  dataset.task = data::TaskType::kClassification;
  std::vector<std::vector<double>> values(columns, std::vector<double>(n));
  dataset.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (size_t c = 0; c < columns; ++c) {
      values[c][i] = static_cast<double>(rng.UniformInt(grid)) -
                     static_cast<double>(grid / 2);
      sum += (c % 2 == 0 ? 1.0 : -1.0) * values[c][i];
    }
    dataset.labels[i] = sum > 0.0 ? 1.0 : 0.0;
  }
  for (size_t c = 0; c < columns; ++c) {
    EXPECT_TRUE(dataset.features
                    .AddColumn(data::Column("q" + std::to_string(c),
                                            std::move(values[c])))
                    .ok());
  }
  return dataset;
}

/// Wide continuous classification data (p columns) for the
/// feature-parallel histogram build path.
data::Dataset MakeWide(size_t n, size_t columns, uint64_t seed) {
  Rng rng(seed);
  data::Dataset dataset;
  dataset.name = "wide";
  dataset.task = data::TaskType::kClassification;
  std::vector<std::vector<double>> values(columns, std::vector<double>(n));
  dataset.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < columns; ++c) values[c][i] = rng.Normal();
    dataset.labels[i] = values[0][i] + values[1][i] > 0.0 ? 1.0 : 0.0;
  }
  for (size_t c = 0; c < columns; ++c) {
    EXPECT_TRUE(dataset.features
                    .AddColumn(data::Column("w" + std::to_string(c),
                                            std::move(values[c])))
                    .ok());
  }
  return dataset;
}

RandomForest::Options ForestOptions(bool share_binner, bool coded_predict,
                                    uint64_t seed = 17) {
  RandomForest::Options options;
  options.seed = seed;
  options.share_binner = share_binner;
  options.coded_predict = coded_predict;
  return options;
}

// On quantized data every bootstrap contains every distinct value, so the
// per-tree binner cuts equal the shared full-frame cuts and the two fit
// paths must produce bit-identical forests for the same seed.
TEST(SharedBinnerForestTest, SharedFitMatchesPerTreeFitOnQuantizedData) {
  const data::Dataset dataset = MakeQuantized(600, 4, 21);
  const data::Dataset query = MakeQuantized(200, 4, 22);
  RandomForest shared(ForestOptions(/*share_binner=*/true,
                                    /*coded_predict=*/false));
  RandomForest per_tree(ForestOptions(/*share_binner=*/false,
                                      /*coded_predict=*/false));
  ASSERT_TRUE(shared.Fit(dataset.features, dataset.labels).ok());
  ASSERT_TRUE(per_tree.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(shared.Predict(dataset.features).ValueOrDie(),
            per_tree.Predict(dataset.features).ValueOrDie());
  EXPECT_EQ(shared.Predict(query.features).ValueOrDie(),
            per_tree.Predict(query.features).ValueOrDie());
  EXPECT_EQ(shared.PredictProba(query.features).ValueOrDie(),
            per_tree.PredictProba(query.features).ValueOrDie());
  EXPECT_EQ(shared.FeatureImportances(), per_tree.FeatureImportances());
}

// code(v) <= split_bin exactly when v <= cut(split_bin) for *any* value,
// so bin-coded prediction must match double-threshold prediction even
// when binning is lossy (2000 rows, 255 bins) and the query frame holds
// values never seen in training.
TEST(SharedBinnerForestTest, CodedPredictMatchesDoublePredict) {
  const data::Dataset dataset = MakeXor(2000, 31);
  const data::Dataset query = MakeXor(500, 32);
  RandomForest coded(ForestOptions(/*share_binner=*/true,
                                   /*coded_predict=*/true));
  RandomForest raw(ForestOptions(/*share_binner=*/true,
                                 /*coded_predict=*/false));
  ASSERT_TRUE(coded.Fit(dataset.features, dataset.labels).ok());
  ASSERT_TRUE(raw.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(coded.Predict(dataset.features).ValueOrDie(),
            raw.Predict(dataset.features).ValueOrDie());
  EXPECT_EQ(coded.Predict(query.features).ValueOrDie(),
            raw.Predict(query.features).ValueOrDie());
  EXPECT_EQ(coded.PredictProba(query.features).ValueOrDie(),
            raw.PredictProba(query.features).ValueOrDie());
}

TEST(SharedBinnerForestTest, CodedPredictMatchesDoublePredictWhenLossless) {
  const data::Dataset dataset = MakeBlobs(150, 33);
  RandomForest coded(ForestOptions(true, true));
  RandomForest raw(ForestOptions(true, false));
  ASSERT_TRUE(coded.Fit(dataset.features, dataset.labels).ok());
  ASSERT_TRUE(raw.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(coded.Predict(dataset.features).ValueOrDie(),
            raw.Predict(dataset.features).ValueOrDie());
}

// The zero-per-tree-work guarantee, by counter: a 10k-row forest fit bins
// the frame exactly once and never materializes a bootstrap sub-frame,
// and coded prediction never re-fits a binner.
TEST(SharedBinnerForestTest, ForestFitBinsOnceAndNeverSelectsRows) {
  const data::Dataset dataset = MakeXor(10000, 41);
  RandomForest forest;  // Defaults: histogram, shared, coded.
  FeatureBinner::ResetTotalFits();
  data::DataFrame::ResetTotalSelectRows();
  ASSERT_TRUE(forest.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(FeatureBinner::TotalFits(), 1u);
  EXPECT_EQ(data::DataFrame::TotalSelectRows(), 0u);
  const auto pred = forest.Predict(dataset.features).ValueOrDie();
  EXPECT_EQ(FeatureBinner::TotalFits(), 1u);  // Predict encodes, never fits.
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.9);
}

// Cross-validation probes SharedBinnerModel: one bin of the frame serves
// every fold and every tree inside every fold, with no fold
// materialization anywhere.
TEST(SharedBinnerForestTest, CrossValidationBinsOnceAndNeverSelectsRows) {
  const data::Dataset dataset = MakeXor(1500, 43);
  CvOptions cv;
  cv.folds = 5;
  FeatureBinner::ResetTotalFits();
  data::DataFrame::ResetTotalSelectRows();
  const double score =
      CrossValidateScore([] { return std::make_unique<RandomForest>(); },
                         dataset, cv)
          .ValueOrDie();
  EXPECT_EQ(FeatureBinner::TotalFits(), 1u);
  EXPECT_EQ(data::DataFrame::TotalSelectRows(), 0u);
  EXPECT_GT(score, 0.85);
}

// The exact strategy declines sharing (BinFrame returns null) and CV must
// fall back to the materialized path and still work.
TEST(SharedBinnerForestTest, ExactStrategyFallsBackToMaterializedCv) {
  const data::Dataset dataset = MakeXor(300, 44);
  CvOptions cv;
  cv.folds = 3;
  FeatureBinner::ResetTotalFits();
  const double score =
      CrossValidateScore(
          [] {
            RandomForest::Options options;
            options.split_strategy = SplitStrategy::kExact;
            return std::make_unique<RandomForest>(options);
          },
          dataset, cv)
          .ValueOrDie();
  EXPECT_EQ(FeatureBinner::TotalFits(), 0u);
  EXPECT_GT(score, 0.85);
}

TEST(SharedBinnerForestTest, FitBinnedRejectsBadInputs) {
  const data::Dataset dataset = MakeXor(100, 45);
  RandomForest forest;
  auto binner = forest.BinFrame(dataset.features).ValueOrDie();
  ASSERT_NE(binner, nullptr);
  // Row id out of range, empty rows, and label-count mismatch all fail.
  EXPECT_FALSE(forest.FitBinned(binner, dataset.labels, {100}).ok());
  EXPECT_FALSE(forest.FitBinned(binner, dataset.labels, {}).ok());
  std::vector<double> short_labels(50, 0.0);
  EXPECT_FALSE(forest.FitBinned(binner, short_labels, {0, 1}).ok());
  EXPECT_FALSE(forest.FitBinned(nullptr, dataset.labels, {0, 1}).ok());
  // PredictBinnedRows needs a shared fit first.
  EXPECT_FALSE(forest.PredictBinnedRows({0}).ok());
}

// Wide frames (p >= 200) cross the feature-parallel histogram threshold:
// the per-feature slices are disjoint and each feature walks rows in
// index order, so fits must be bit-identical at every thread count, for
// both a standalone tree and a shared-binner forest.
TEST(SharedBinnerForestTest, WideFrameFitsIdenticalAcrossThreadCounts) {
  const data::Dataset dataset = MakeWide(2000, 200, 51);
  DecisionTree::Options tree_options;
  tree_options.split_strategy = SplitStrategy::kHistogram;
  tree_options.seed = 7;

  runtime::SetGlobalThreads(1);
  DecisionTree serial_tree(tree_options);
  ASSERT_TRUE(serial_tree.Fit(dataset.features, dataset.labels).ok());
  const auto serial_tree_pred =
      serial_tree.Predict(dataset.features).ValueOrDie();
  RandomForest serial_forest(ForestOptions(true, true));
  ASSERT_TRUE(serial_forest.Fit(dataset.features, dataset.labels).ok());
  const auto serial_forest_pred =
      serial_forest.Predict(dataset.features).ValueOrDie();

  for (size_t threads : {2u, 3u, 4u, 8u}) {
    runtime::SetGlobalThreads(threads);
    DecisionTree tree(tree_options);
    ASSERT_TRUE(tree.Fit(dataset.features, dataset.labels).ok());
    EXPECT_EQ(tree.node_count(), serial_tree.node_count());
    EXPECT_EQ(tree.Predict(dataset.features).ValueOrDie(), serial_tree_pred);
    RandomForest forest(ForestOptions(true, true));
    ASSERT_TRUE(forest.Fit(dataset.features, dataset.labels).ok());
    EXPECT_EQ(forest.Predict(dataset.features).ValueOrDie(),
              serial_forest_pred);
  }
  runtime::SetGlobalThreads(1);
}

}  // namespace
}  // namespace eafe::ml
