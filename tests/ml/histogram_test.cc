#include <gtest/gtest.h>

#include <cmath>

#include "ml/decision_tree.h"
#include "ml/evaluator.h"
#include "ml/feature_binner.h"
#include "ml/histogram_builder.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "runtime/thread_pool.h"
#include "tests/ml/test_util.h"

namespace eafe::ml {
namespace {

using testing::LabelAccuracy;
using testing::MakeBlobs;
using testing::MakeSeparable;
using testing::MakeSmoothRegression;
using testing::MakeXor;

TEST(SplitStrategyTest, StringRoundTrip) {
  EXPECT_EQ(SplitStrategyToString(SplitStrategy::kExact), "exact");
  EXPECT_EQ(SplitStrategyToString(SplitStrategy::kHistogram), "histogram");
  EXPECT_EQ(SplitStrategyFromString("exact").ValueOrDie(),
            SplitStrategy::kExact);
  EXPECT_EQ(SplitStrategyFromString("Histogram").ValueOrDie(),
            SplitStrategy::kHistogram);
  EXPECT_EQ(SplitStrategyFromString("hist").ValueOrDie(),
            SplitStrategy::kHistogram);
  EXPECT_FALSE(SplitStrategyFromString("sorted").ok());
}

TEST(FeatureBinnerTest, LosslessWhenDistinctValuesFit) {
  data::DataFrame x;
  ASSERT_TRUE(
      x.AddColumn(data::Column("f", {3.0, 1.0, 2.0, 2.0, 1.0, 3.0})).ok());
  FeatureBinner binner;
  ASSERT_TRUE(binner.Fit(x).ok());
  ASSERT_EQ(binner.num_bins(0), 3u);
  // Codes follow value order; equal values share a bin.
  EXPECT_EQ(binner.code(0, 1), binner.code(0, 4));  // Both 1.0.
  EXPECT_EQ(binner.code(0, 0), binner.code(0, 5));  // Both 3.0.
  EXPECT_LT(binner.code(0, 1), binner.code(0, 2));
  EXPECT_LT(binner.code(0, 2), binner.code(0, 0));
  // Cuts are midpoints between adjacent distinct values.
  EXPECT_DOUBLE_EQ(binner.cut(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(binner.cut(0, 1), 2.5);
}

TEST(FeatureBinnerTest, ConstantColumnGetsOneBin) {
  data::DataFrame x;
  ASSERT_TRUE(x.AddColumn(data::Column("c", {7.0, 7.0, 7.0})).ok());
  FeatureBinner binner;
  ASSERT_TRUE(binner.Fit(x).ok());
  EXPECT_EQ(binner.num_bins(0), 1u);
}

TEST(FeatureBinnerTest, CapsBinsOnWideColumns) {
  const size_t n = 5000;
  std::vector<double> values(n);
  Rng rng(3);
  for (double& v : values) v = rng.Normal();
  data::DataFrame x;
  ASSERT_TRUE(x.AddColumn(data::Column("f", values)).ok());
  FeatureBinner::Options options;
  options.max_bins = 32;
  FeatureBinner binner(options);
  ASSERT_TRUE(binner.Fit(x).ok());
  EXPECT_LE(binner.num_bins(0), 32u);
  EXPECT_GE(binner.num_bins(0), 30u);  // Continuous data fills the budget.
  // Encoding is order-preserving: larger value -> bin at least as large.
  for (size_t i = 1; i < n; ++i) {
    if (values[i] > values[i - 1]) {
      EXPECT_GE(binner.code(0, i), binner.code(0, i - 1));
    }
  }
  // Cuts partition the value range consistently with the codes.
  for (size_t i = 0; i < n; ++i) {
    const uint8_t bin = binner.code(0, i);
    if (bin > 0) {
      EXPECT_GT(values[i], binner.cut(0, bin - 1));
    }
    if (bin + 1u < binner.num_bins(0)) {
      EXPECT_LE(values[i], binner.cut(0, bin));
    }
  }
}

TEST(FeatureBinnerTest, RejectsBadInput) {
  FeatureBinner binner;
  data::DataFrame empty;
  EXPECT_FALSE(binner.Fit(empty).ok());
  data::DataFrame x;
  ASSERT_TRUE(x.AddColumn(data::Column("f", {1.0, 2.0})).ok());
  FeatureBinner::Options options;
  options.max_bins = 1;
  EXPECT_FALSE(FeatureBinner(options).Fit(x).ok());
  options.max_bins = 257;
  EXPECT_FALSE(FeatureBinner(options).Fit(x).ok());
}

TEST(HistogramBuilderTest, SubtractionMatchesDirectBuild) {
  const data::Dataset dataset = MakeBlobs(120, 5);
  FeatureBinner binner;
  ASSERT_TRUE(binner.Fit(dataset.features).ok());
  const BinnedLabels labels =
      BinnedLabels::Create(data::TaskType::kClassification, dataset.labels)
          .ValueOrDie();
  HistogramBuilder builder(&binner, data::TaskType::kClassification, &labels,
                           &dataset.labels);
  std::vector<size_t> all(120), left, right;
  for (size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
    (i % 3 == 0 ? left : right).push_back(i);
  }
  Histogram parent, left_hist, expected_right;
  builder.Build(all, &parent);
  builder.Build(left, &left_hist);
  builder.Build(right, &expected_right);
  Histogram derived;
  builder.Subtract(parent, left_hist, &derived);
  EXPECT_EQ(derived.data, expected_right.data);
  EXPECT_EQ(derived.totals, expected_right.totals);
}

// With every sample value distinct and n <= max_bins, the binning is
// lossless and histogram split finding scans exactly the thresholds the
// exact backend scans — the trees must agree on the training partition.
TEST(HistogramEquivalenceTest, AgreesWithExactWhenBinningIsLossless) {
  const data::Dataset dataset = MakeXor(200, 21);  // Continuous, n <= 255.
  DecisionTree::Options options;
  options.split_strategy = SplitStrategy::kExact;
  DecisionTree exact(options);
  options.split_strategy = SplitStrategy::kHistogram;
  DecisionTree histogram(options);
  ASSERT_TRUE(exact.Fit(dataset.features, dataset.labels).ok());
  ASSERT_TRUE(histogram.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(exact.node_count(), histogram.node_count());
  EXPECT_EQ(exact.Predict(dataset.features).ValueOrDie(),
            histogram.Predict(dataset.features).ValueOrDie());
  EXPECT_EQ(exact.PredictProba(dataset.features).ValueOrDie(),
            histogram.PredictProba(dataset.features).ValueOrDie());
}

TEST(HistogramEquivalenceTest, AgreesWithExactOnRegressionWhenLossless) {
  const data::Dataset dataset = MakeSmoothRegression(180, 22);
  DecisionTree::Options options;
  options.task = data::TaskType::kRegression;
  options.split_strategy = SplitStrategy::kExact;
  DecisionTree exact(options);
  options.split_strategy = SplitStrategy::kHistogram;
  DecisionTree histogram(options);
  ASSERT_TRUE(exact.Fit(dataset.features, dataset.labels).ok());
  ASSERT_TRUE(histogram.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(exact.node_count(), histogram.node_count());
  EXPECT_EQ(exact.Predict(dataset.features).ValueOrDie(),
            histogram.Predict(dataset.features).ValueOrDie());
}

TEST(HistogramEquivalenceTest, ClassificationAccuracyWithinTolerance) {
  const data::Dataset dataset = MakeXor(3000, 23);
  RandomForest::Options options;
  options.split_strategy = SplitStrategy::kExact;
  RandomForest exact(options);
  options.split_strategy = SplitStrategy::kHistogram;
  RandomForest histogram(options);
  ASSERT_TRUE(exact.Fit(dataset.features, dataset.labels).ok());
  ASSERT_TRUE(histogram.Fit(dataset.features, dataset.labels).ok());
  const double exact_acc = LabelAccuracy(
      dataset.labels, exact.Predict(dataset.features).ValueOrDie());
  const double histogram_acc = LabelAccuracy(
      dataset.labels, histogram.Predict(dataset.features).ValueOrDie());
  EXPECT_GT(histogram_acc, 0.9);
  EXPECT_NEAR(histogram_acc, exact_acc, 0.02);
}

TEST(HistogramEquivalenceTest, RegressionScoreWithinTolerance) {
  const data::Dataset dataset = MakeSmoothRegression(3000, 24);
  RandomForest::Options options;
  options.task = data::TaskType::kRegression;
  options.split_strategy = SplitStrategy::kExact;
  RandomForest exact(options);
  options.split_strategy = SplitStrategy::kHistogram;
  RandomForest histogram(options);
  ASSERT_TRUE(exact.Fit(dataset.features, dataset.labels).ok());
  ASSERT_TRUE(histogram.Fit(dataset.features, dataset.labels).ok());
  const double exact_score = OneMinusRae(
      dataset.labels, exact.Predict(dataset.features).ValueOrDie());
  const double histogram_score = OneMinusRae(
      dataset.labels, histogram.Predict(dataset.features).ValueOrDie());
  EXPECT_GT(histogram_score, 0.7);
  EXPECT_NEAR(histogram_score, exact_score, 0.02);
}

TEST(HistogramEquivalenceTest, MultiClassForestLearnsBlobs) {
  const data::Dataset dataset = MakeBlobs(600, 25);
  RandomForest::Options options;
  options.split_strategy = SplitStrategy::kHistogram;
  RandomForest forest(options);
  ASSERT_TRUE(forest.Fit(dataset.features, dataset.labels).ok());
  EXPECT_GT(LabelAccuracy(dataset.labels,
                          forest.Predict(dataset.features).ValueOrDie()),
            0.95);
}

TEST(HistogramEquivalenceTest, EvaluatorScoresWithinOnePercent) {
  // The acceptance bar: downstream CV scores of the two backends agree
  // within 1% on the equivalence datasets. Agreement here is statistical,
  // not bitwise: at deep nodes the exact backend centers thresholds
  // between node-local adjacent values while the histogram uses global
  // bin cuts, so held-out rows between the two can route differently.
  // Averaging over enough trees keeps the effect well inside 1%.
  for (const data::Dataset& dataset :
       {MakeSeparable(1000, 26), MakeSmoothRegression(1000, 27)}) {
    EvaluatorOptions options;
    options.cv_folds = 3;
    options.rf_trees = 30;
    options.split_strategy = SplitStrategy::kExact;
    const double exact_score =
        TaskEvaluator(options).Score(dataset).ValueOrDie();
    options.split_strategy = SplitStrategy::kHistogram;
    const double histogram_score =
        TaskEvaluator(options).Score(dataset).ValueOrDie();
    EXPECT_NEAR(histogram_score, exact_score, 0.01) << dataset.name;
  }
}

TEST(HistogramDeterminismTest, RepeatedFitsAreBitIdentical) {
  const data::Dataset dataset = MakeXor(500, 28);
  RandomForest::Options options;
  options.split_strategy = SplitStrategy::kHistogram;
  RandomForest a(options), b(options);
  ASSERT_TRUE(a.Fit(dataset.features, dataset.labels).ok());
  ASSERT_TRUE(b.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(a.Predict(dataset.features).ValueOrDie(),
            b.Predict(dataset.features).ValueOrDie());
  EXPECT_EQ(a.PredictProba(dataset.features).ValueOrDie(),
            b.PredictProba(dataset.features).ValueOrDie());
  EXPECT_EQ(a.FeatureImportances(), b.FeatureImportances());
}

TEST(HistogramDeterminismTest, FitIsIdenticalAcrossThreadCounts) {
  // PR 1's determinism contract extended to the histogram strategy:
  // binning and per-node histogram work are serial per tree, so parallel
  // tree training stays bit-identical to the serial path.
  const data::Dataset dataset = MakeBlobs(400, 29);
  RandomForest::Options options;
  options.split_strategy = SplitStrategy::kHistogram;
  runtime::SetGlobalThreads(1);
  RandomForest serial(options);
  ASSERT_TRUE(serial.Fit(dataset.features, dataset.labels).ok());
  runtime::SetGlobalThreads(4);
  RandomForest parallel(options);
  ASSERT_TRUE(parallel.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(serial.Predict(dataset.features).ValueOrDie(),
            parallel.Predict(dataset.features).ValueOrDie());
  EXPECT_EQ(serial.PredictProba(dataset.features).ValueOrDie(),
            parallel.PredictProba(dataset.features).ValueOrDie());
  EXPECT_EQ(serial.FeatureImportances(), parallel.FeatureImportances());
  runtime::SetGlobalThreads(1);
}

TEST(HistogramTreeTest, RejectsNegativeClassLabels) {
  data::DataFrame x;
  ASSERT_TRUE(x.AddColumn(data::Column("f", {1.0, 2.0, 3.0, 4.0})).ok());
  DecisionTree tree;
  EXPECT_FALSE(tree.Fit(x, {0.0, -1.0, 0.0, 1.0}).ok());
}

}  // namespace
}  // namespace eafe::ml
