#include "ml/mlp.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "tests/ml/test_util.h"

namespace eafe::ml {
namespace {

using testing::LabelAccuracy;
using testing::MakeBlobs;
using testing::MakeSeparable;
using testing::MakeSmoothRegression;
using testing::MakeXor;

TEST(MlpTest, LearnsXor) {
  const data::Dataset dataset = MakeXor(400, 1);
  Mlp::Options options;
  options.epochs = 150;
  Mlp model(options);
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.9);
}

TEST(MlpTest, LearnsSeparable) {
  const data::Dataset dataset = MakeSeparable(300, 2);
  Mlp model;
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.93);
}

TEST(MlpTest, MultiClass) {
  const data::Dataset dataset = MakeBlobs(300, 3);
  Mlp model;
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.95);
}

TEST(MlpTest, RegressionFitsSmoothFunction) {
  const data::Dataset dataset = MakeSmoothRegression(400, 4);
  Mlp::Options options;
  options.task = data::TaskType::kRegression;
  options.epochs = 150;
  Mlp model(options);
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(OneMinusRae(dataset.labels, pred), 0.8);
}

TEST(MlpTest, RegressionHandlesShiftedScaledTargets) {
  data::Dataset dataset = MakeSmoothRegression(300, 5);
  for (double& y : dataset.labels) y = 1000.0 + 50.0 * y;
  Mlp::Options options;
  options.task = data::TaskType::kRegression;
  options.epochs = 150;
  Mlp model(options);
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(OneMinusRae(dataset.labels, pred), 0.7);
}

TEST(MlpTest, PredictProbaSumsToValid) {
  const data::Dataset dataset = MakeSeparable(200, 6);
  Mlp model;
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto proba = model.PredictProba(dataset.features).ValueOrDie();
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(MlpTest, PredictProbaRequiresClassification) {
  Mlp::Options options;
  options.task = data::TaskType::kRegression;
  Mlp model(options);
  const data::Dataset dataset = MakeSmoothRegression(50, 7);
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  EXPECT_FALSE(model.PredictProba(dataset.features).ok());
}

TEST(MlpTest, DeterministicGivenSeed) {
  const data::Dataset dataset = MakeSeparable(100, 8);
  Mlp a, b;
  ASSERT_TRUE(a.Fit(dataset.features, dataset.labels).ok());
  ASSERT_TRUE(b.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(a.PredictProba(dataset.features).ValueOrDie(),
            b.PredictProba(dataset.features).ValueOrDie());
}

TEST(MlpTest, ErrorsOnBadInput) {
  Mlp model;
  data::DataFrame x;
  ASSERT_TRUE(x.AddColumn(data::Column("f", {1, 2, 3})).ok());
  EXPECT_FALSE(model.Fit(x, {1.0}).ok());
  EXPECT_FALSE(model.Fit(x, {1, 1, 1}).ok());  // Single class.
  EXPECT_FALSE(model.Predict(x).ok());
}

}  // namespace
}  // namespace eafe::ml
