#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "data/dataframe.h"
#include "ml/cross_validation.h"
#include "ml/evaluator.h"
#include "ml/feature_binner.h"
#include "ml/gradient_boosted_trees.h"
#include "ml/metrics.h"
#include "runtime/thread_pool.h"
#include "tests/ml/test_util.h"

namespace eafe::ml {
namespace {

using testing::LabelAccuracy;
using testing::MakeBlobs;
using testing::MakeSeparable;
using testing::MakeSmoothRegression;
using testing::MakeXor;

data::DataFrame OneColumn(std::vector<double> values) {
  data::DataFrame frame;
  EXPECT_TRUE(
      frame.AddColumn(data::Column("x", std::move(values))).ok());
  return frame;
}

/// Wide binary-classification data (p columns) crossing the
/// feature-parallel histogram thresholds.
data::Dataset MakeWide(size_t n, size_t columns, uint64_t seed) {
  Rng rng(seed);
  data::Dataset dataset;
  dataset.name = "wide";
  dataset.task = data::TaskType::kClassification;
  std::vector<std::vector<double>> values(columns, std::vector<double>(n));
  dataset.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < columns; ++c) values[c][i] = rng.Normal();
    dataset.labels[i] = values[0][i] + values[1][i] > 0.0 ? 1.0 : 0.0;
  }
  for (size_t c = 0; c < columns; ++c) {
    EXPECT_TRUE(dataset.features
                    .AddColumn(data::Column("w" + std::to_string(c),
                                            std::move(values[c])))
                    .ok());
  }
  return dataset;
}

// One squared-loss round on x = {0,1,2,3}, y = {0,0,1,1}, depth 1,
// learning rate 1, lambda 0 is fully hand-computable: base = mean = 0.5,
// gradients are {+.5,+.5,-.5,-.5}, the best boundary is between x=1 and
// x=2 (gain 0.5 vs 1/6 for the outer boundaries), and the Newton leaf
// weights -G/H are -(+1)/2 = -0.5 and +0.5 — so the booster reproduces
// the labels exactly.
TEST(GradientBoostedTreesTest, RegressionHandFixtureOneRound) {
  const data::DataFrame x = OneColumn({0.0, 1.0, 2.0, 3.0});
  const std::vector<double> y = {0.0, 0.0, 1.0, 1.0};
  GradientBoostedTrees::Options options;
  options.task = data::TaskType::kRegression;
  options.rounds = 1;
  options.learning_rate = 1.0;
  options.max_depth = 1;
  options.min_samples_leaf = 1;
  options.lambda = 0.0;
  GradientBoostedTrees booster(options);
  ASSERT_TRUE(booster.Fit(x, y).ok());
  EXPECT_EQ(booster.num_trees(), 1u);
  EXPECT_DOUBLE_EQ(booster.base_score(), 0.5);
  const std::vector<double> predicted = booster.Predict(x).ValueOrDie();
  ASSERT_EQ(predicted.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(predicted[i], y[i]);
}

// One logistic round on x = {0,1}, y = {0,1}: base log-odds = 0,
// gradients p - y = {+.5,-.5}, hessians p(1-p) = .25, so the single
// depth-1 tree's leaves are -G/H = -(+.5)/.25 = -2 and +2. Probabilities
// must equal sigmoid(-2)/sigmoid(+2) exactly and labels threshold to
// {0,1}.
TEST(GradientBoostedTreesTest, LogisticHandFixtureOneRound) {
  const data::DataFrame x = OneColumn({0.0, 1.0});
  const std::vector<double> y = {0.0, 1.0};
  GradientBoostedTrees::Options options;
  options.rounds = 1;
  options.learning_rate = 1.0;
  options.max_depth = 1;
  options.min_samples_leaf = 1;
  options.lambda = 0.0;
  GradientBoostedTrees booster(options);
  ASSERT_TRUE(booster.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(booster.base_score(), 0.0);
  const std::vector<double> proba =
      booster.PredictProba(x).ValueOrDie();
  ASSERT_EQ(proba.size(), 2u);
  EXPECT_DOUBLE_EQ(proba[0], std::exp(-2.0) / (1.0 + std::exp(-2.0)));
  EXPECT_DOUBLE_EQ(proba[1], 1.0 / (1.0 + std::exp(-2.0)));
  const std::vector<double> predicted = booster.Predict(x).ValueOrDie();
  EXPECT_DOUBLE_EQ(predicted[0], 0.0);
  EXPECT_DOUBLE_EQ(predicted[1], 1.0);
}

TEST(GradientBoostedTreesTest, MoreRoundsReduceTrainingError) {
  const data::Dataset dataset = MakeSmoothRegression(400, 61);
  auto training_mse = [&](size_t rounds) {
    GradientBoostedTrees::Options options;
    options.task = data::TaskType::kRegression;
    options.rounds = rounds;
    GradientBoostedTrees booster(options);
    EXPECT_TRUE(booster.Fit(dataset.features, dataset.labels).ok());
    const std::vector<double> predicted =
        booster.Predict(dataset.features).ValueOrDie();
    double mse = 0.0;
    for (size_t i = 0; i < predicted.size(); ++i) {
      const double d = predicted[i] - dataset.labels[i];
      mse += d * d;
    }
    return mse / static_cast<double>(predicted.size());
  };
  EXPECT_LT(training_mse(50), training_mse(5));
}

// The shared-binner invariant, by counter: one whole booster fit (40
// rounds of trees) bins the frame exactly once and never materializes a
// row subset; prediction encodes but never re-fits a binner.
TEST(GradientBoostedTreesTest, FitBinsFrameOnceAndNeverSelectsRows) {
  const data::Dataset dataset = MakeXor(5000, 62);
  GradientBoostedTrees booster;
  FeatureBinner::ResetTotalFits();
  data::DataFrame::ResetTotalSelectRows();
  ASSERT_TRUE(booster.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(FeatureBinner::TotalFits(), 1u);
  EXPECT_EQ(data::DataFrame::TotalSelectRows(), 0u);
  const auto predicted = booster.Predict(dataset.features).ValueOrDie();
  EXPECT_EQ(FeatureBinner::TotalFits(), 1u);
  EXPECT_GT(LabelAccuracy(dataset.labels, predicted), 0.9);
}

// Cross-validation probes SharedBinnerModel on the booster exactly as it
// does on the forest: one bin of the frame serves every fold, held-out
// rows are scored by id.
TEST(GradientBoostedTreesTest, CrossValidationBinsOnceAndNeverSelectsRows) {
  const data::Dataset dataset = MakeXor(1500, 63);
  CvOptions cv;
  cv.folds = 5;
  FeatureBinner::ResetTotalFits();
  data::DataFrame::ResetTotalSelectRows();
  const double score =
      CrossValidateScore(
          [] { return std::make_unique<GradientBoostedTrees>(); }, dataset,
          cv)
          .ValueOrDie();
  EXPECT_EQ(FeatureBinner::TotalFits(), 1u);
  EXPECT_EQ(data::DataFrame::TotalSelectRows(), 0u);
  EXPECT_GT(score, 0.8);
}

TEST(GradientBoostedTreesTest, PredictBinnedRowsMatchesPredict) {
  const data::Dataset dataset = MakeXor(800, 64);
  GradientBoostedTrees booster;
  ASSERT_TRUE(booster.Fit(dataset.features, dataset.labels).ok());
  std::vector<size_t> rows(dataset.labels.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  EXPECT_EQ(booster.PredictBinnedRows(rows).ValueOrDie(),
            booster.Predict(dataset.features).ValueOrDie());
}

// Wide frames cross the feature-parallel histogram threshold and the
// subsample exercises the pre-drawn per-round sampling: fits must be
// bit-identical across reruns and across every thread count.
TEST(GradientBoostedTreesTest, RerunsAndThreadCountsAreBitIdentical) {
  const data::Dataset dataset = MakeWide(800, 200, 65);
  GradientBoostedTrees::Options options;
  options.rounds = 15;
  options.subsample = 0.7;
  options.seed = 9;

  runtime::SetGlobalThreads(1);
  GradientBoostedTrees serial(options);
  ASSERT_TRUE(serial.Fit(dataset.features, dataset.labels).ok());
  const auto serial_proba =
      serial.PredictProba(dataset.features).ValueOrDie();

  GradientBoostedTrees rerun(options);
  ASSERT_TRUE(rerun.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(rerun.PredictProba(dataset.features).ValueOrDie(),
            serial_proba);

  for (size_t threads : {2u, 3u, 4u, 8u}) {
    runtime::SetGlobalThreads(threads);
    GradientBoostedTrees booster(options);
    ASSERT_TRUE(booster.Fit(dataset.features, dataset.labels).ok());
    EXPECT_EQ(booster.PredictProba(dataset.features).ValueOrDie(),
              serial_proba);
  }
  runtime::SetGlobalThreads(1);
}

// The evaluator's gbdt choice must clear the no-information bar: the
// majority-class weighted F1 for classification, and 0 (the mean
// predictor's 1-RAE) for regression.
TEST(GradientBoostedTreesTest, EvaluatorBeatsMeanPredictorBaseline) {
  EvaluatorOptions options;
  options.model = ModelKind::kGradientBoostedTrees;
  TaskEvaluator evaluator(options);

  const data::Dataset classification = MakeSeparable(300, 66);
  double majority = 0.0;
  for (double label : classification.labels) majority += label;
  const double majority_label =
      majority * 2.0 >= static_cast<double>(classification.labels.size())
          ? 1.0
          : 0.0;
  const std::vector<double> constant(classification.labels.size(),
                                     majority_label);
  const double baseline = F1Weighted(classification.labels, constant);
  EXPECT_GT(evaluator.Score(classification).ValueOrDie(), baseline + 0.1);

  const data::Dataset regression = MakeSmoothRegression(300, 67);
  EXPECT_GT(evaluator.Score(regression).ValueOrDie(), 0.3);
}

TEST(GradientBoostedTreesTest, RejectsBadInputs) {
  const data::Dataset dataset = MakeXor(100, 68);
  GradientBoostedTrees booster;
  // Predict before fit.
  EXPECT_FALSE(booster.Predict(dataset.features).ok());
  EXPECT_FALSE(booster.PredictBinnedRows({0}).ok());

  auto binner = booster.BinFrame(dataset.features).ValueOrDie();
  ASSERT_NE(binner, nullptr);
  EXPECT_FALSE(booster.FitBinned(binner, dataset.labels, {100}).ok());
  EXPECT_FALSE(booster.FitBinned(binner, dataset.labels, {}).ok());
  std::vector<double> short_labels(50, 0.0);
  EXPECT_FALSE(booster.FitBinned(binner, short_labels, {0, 1}).ok());
  EXPECT_FALSE(booster.FitBinned(nullptr, dataset.labels, {0, 1}).ok());
  // Boosting keeps per-row score state: bootstrap-style repeats refused.
  EXPECT_FALSE(booster.FitBinned(binner, dataset.labels, {0, 0, 1}).ok());

  // The logistic loss is binary; a three-class problem must be refused.
  const data::Dataset blobs = MakeBlobs(90, 69);
  EXPECT_FALSE(booster.Fit(blobs.features, blobs.labels).ok());

  GradientBoostedTrees::Options bad = GradientBoostedTrees::Options();
  bad.rounds = 0;
  EXPECT_FALSE(GradientBoostedTrees(bad)
                   .Fit(dataset.features, dataset.labels)
                   .ok());
  bad = GradientBoostedTrees::Options();
  bad.subsample = 0.0;
  EXPECT_FALSE(GradientBoostedTrees(bad)
                   .Fit(dataset.features, dataset.labels)
                   .ok());
}

}  // namespace
}  // namespace eafe::ml
