#include "ml/feature_selection.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/ml/test_util.h"

namespace eafe::ml {
namespace {

using testing::MakeSeparable;

TEST(FeatureSelectionTest, KeepsAllWhenWithinCap) {
  const data::Dataset dataset = MakeSeparable(150, 1);  // 3 features.
  PreselectOptions options;
  options.max_features = 10;
  const data::Dataset out =
      PreselectFeatures(dataset, options).ValueOrDie();
  EXPECT_EQ(out.num_features(), 3u);
  EXPECT_TRUE(out.features == dataset.features);
}

TEST(FeatureSelectionTest, DropsNoiseFirst) {
  // MakeSeparable: x0, x1 carry the label; the third column is noise.
  const data::Dataset dataset = MakeSeparable(400, 2);
  PreselectOptions options;
  options.max_features = 2;
  const auto indices = TopFeatureIndices(dataset, options).ValueOrDie();
  ASSERT_EQ(indices.size(), 2u);
  EXPECT_TRUE(std::find(indices.begin(), indices.end(), 0u) !=
              indices.end());
  EXPECT_TRUE(std::find(indices.begin(), indices.end(), 1u) !=
              indices.end());
}

TEST(FeatureSelectionTest, PreservesOriginalColumnOrder) {
  const data::Dataset dataset = MakeSeparable(200, 3);
  PreselectOptions options;
  options.max_features = 2;
  const auto indices = TopFeatureIndices(dataset, options).ValueOrDie();
  EXPECT_TRUE(std::is_sorted(indices.begin(), indices.end()));
  const data::Dataset out =
      PreselectFeatures(dataset, options).ValueOrDie();
  EXPECT_EQ(out.num_features(), 2u);
  EXPECT_EQ(out.labels, dataset.labels);
  EXPECT_EQ(out.task, dataset.task);
}

TEST(FeatureSelectionTest, RejectsBadInput) {
  PreselectOptions options;
  options.max_features = 0;
  const data::Dataset dataset = MakeSeparable(100, 4);
  EXPECT_FALSE(TopFeatureIndices(dataset, options).ok());
  data::Dataset bad;
  options.max_features = 2;
  EXPECT_FALSE(TopFeatureIndices(bad, options).ok());
}

TEST(FeatureSelectionTest, WideDatasetShrinksToCap) {
  // 30 features, 2 informative; cap at 8.
  Rng rng(7);
  const size_t n = 300;
  data::Dataset dataset;
  dataset.task = data::TaskType::kClassification;
  std::vector<double> signal(n);
  for (size_t i = 0; i < n; ++i) signal[i] = rng.Normal();
  ASSERT_TRUE(dataset.features.AddColumn(
      data::Column("signal", signal)).ok());
  for (size_t f = 0; f < 29; ++f) {
    std::vector<double> noise(n);
    for (double& v : noise) v = rng.Normal();
    ASSERT_TRUE(dataset.features.AddColumn(
        data::Column("noise" + std::to_string(f), noise)).ok());
  }
  dataset.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    dataset.labels[i] = signal[i] > 0 ? 1.0 : 0.0;
  }
  PreselectOptions options;
  options.max_features = 8;
  const data::Dataset out =
      PreselectFeatures(dataset, options).ValueOrDie();
  EXPECT_EQ(out.num_features(), 8u);
  // The signal column must survive.
  EXPECT_TRUE(out.features.ColumnIndex("signal").ok());
}

}  // namespace
}  // namespace eafe::ml
