#include "ml/naive_bayes.h"

#include <gtest/gtest.h>

#include "tests/ml/test_util.h"

namespace eafe::ml {
namespace {

using testing::LabelAccuracy;
using testing::MakeBlobs;
using testing::MakeSeparable;

TEST(GaussianNaiveBayesTest, LearnsBlobs) {
  const data::Dataset dataset = MakeBlobs(300, 1);
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(model.num_classes(), 3u);
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.95);
}

TEST(GaussianNaiveBayesTest, BinaryProbabilities) {
  const data::Dataset dataset = MakeSeparable(300, 2);
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto proba = model.PredictProba(dataset.features).ValueOrDie();
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  for (size_t i = 0; i < proba.size(); ++i) {
    EXPECT_GE(proba[i], 0.0);
    EXPECT_LE(proba[i], 1.0);
    // Argmax consistency for binary problems.
    EXPECT_EQ(pred[i] == 1.0, proba[i] >= 0.5) << i;
  }
}

TEST(GaussianNaiveBayesTest, PriorsInfluencePrediction) {
  // Heavily imbalanced overlapping data: prior should pull predictions.
  Rng rng(3);
  std::vector<double> x, labels;
  for (int i = 0; i < 180; ++i) {
    x.push_back(rng.Normal(0.0, 1.0));
    labels.push_back(0.0);
  }
  for (int i = 0; i < 20; ++i) {
    x.push_back(rng.Normal(0.5, 1.0));
    labels.push_back(1.0);
  }
  data::DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(data::Column("x", x)).ok());
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(frame, labels).ok());
  const auto pred = model.Predict(frame).ValueOrDie();
  size_t predicted_majority = 0;
  for (double p : pred) predicted_majority += p == 0.0;
  EXPECT_GT(predicted_majority, 150u);
}

TEST(GaussianNaiveBayesTest, VarianceFloorHandlesConstantFeature) {
  data::DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(data::Column("c", {1, 1, 1, 1})).ok());
  ASSERT_TRUE(frame.AddColumn(data::Column("x", {0, 0, 5, 5})).ok());
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(frame, {0, 0, 1, 1}).ok());
  const auto pred = model.Predict(frame).ValueOrDie();
  EXPECT_EQ(pred, (std::vector<double>{0, 0, 1, 1}));
}

TEST(GaussianNaiveBayesTest, RejectsEmptyClass) {
  data::DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(data::Column("x", {1, 2, 3})).ok());
  // Labels 0 and 2 present, class 1 missing.
  EXPECT_FALSE(GaussianNaiveBayes().Fit(frame, {0, 2, 0}).ok());
}

TEST(GaussianNaiveBayesTest, ErrorsOnBadInput) {
  GaussianNaiveBayes model;
  data::DataFrame x;
  ASSERT_TRUE(x.AddColumn(data::Column("f", {1, 2})).ok());
  EXPECT_FALSE(model.Fit(x, {1.0}).ok());
  EXPECT_FALSE(model.Predict(x).ok());
  ASSERT_TRUE(model.Fit(x, {0.0, 1.0}).ok());
  data::DataFrame wide;
  ASSERT_TRUE(wide.AddColumn(data::Column("a", {1.0})).ok());
  ASSERT_TRUE(wide.AddColumn(data::Column("b", {2.0})).ok());
  EXPECT_FALSE(model.Predict(wide).ok());
}

}  // namespace
}  // namespace eafe::ml
