#include "ml/linear.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "tests/ml/test_util.h"

namespace eafe::ml {
namespace {

using testing::LabelAccuracy;
using testing::MakeBlobs;
using testing::MakeLinearRegression;
using testing::MakeSeparable;

TEST(LogisticRegressionTest, LearnsSeparableData) {
  const data::Dataset dataset = MakeSeparable(400, 1);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.95);
}

TEST(LogisticRegressionTest, ProbabilitiesCalibratedDirectionally) {
  const data::Dataset dataset = MakeSeparable(300, 2);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto proba = model.PredictProba(dataset.features).ValueOrDie();
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  double pos_mean = 0.0, neg_mean = 0.0;
  size_t pos = 0, neg = 0;
  for (size_t i = 0; i < proba.size(); ++i) {
    if (dataset.labels[i] == 1.0) {
      pos_mean += proba[i];
      ++pos;
    } else {
      neg_mean += proba[i];
      ++neg;
    }
  }
  EXPECT_GT(pos_mean / static_cast<double>(pos), 0.7);
  EXPECT_LT(neg_mean / static_cast<double>(neg), 0.3);
}

TEST(LogisticRegressionTest, MultiClassOneVsRest) {
  const data::Dataset dataset = MakeBlobs(300, 3);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.9);
}

TEST(LogisticRegressionTest, ErrorsOnBadInput) {
  LogisticRegression model;
  data::DataFrame x;
  ASSERT_TRUE(x.AddColumn(data::Column("f", {1, 2, 3})).ok());
  EXPECT_FALSE(model.Fit(x, {1.0, 0.0}).ok());   // Mismatch.
  EXPECT_FALSE(model.Fit(x, {0, 0, 0}).ok());    // Single class.
  EXPECT_FALSE(model.Predict(x).ok());           // Not fitted.
}

TEST(LogisticRegressionTest, DeterministicGivenSeed) {
  const data::Dataset dataset = MakeSeparable(150, 4);
  LogisticRegression a, b;
  ASSERT_TRUE(a.Fit(dataset.features, dataset.labels).ok());
  ASSERT_TRUE(b.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(a.PredictProba(dataset.features).ValueOrDie(),
            b.PredictProba(dataset.features).ValueOrDie());
}

TEST(LinearSvmTest, LearnsSeparableData) {
  const data::Dataset dataset = MakeSeparable(400, 5);
  LinearSvm model;
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.95);
}

TEST(LinearSvmTest, MultiClassOneVsRest) {
  const data::Dataset dataset = MakeBlobs(300, 6);
  LinearSvm model;
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.9);
}

TEST(LinearSvmTest, RegressionRecoversLinearTarget) {
  const data::Dataset dataset = MakeLinearRegression(400, 7);
  LinearSvm::Options options;
  options.task = data::TaskType::kRegression;
  options.epochs = 200;
  LinearSvm model(options);
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(OneMinusRae(dataset.labels, pred), 0.85);
}

TEST(LinearSvmTest, TaskAccessor) {
  LinearSvm::Options options;
  options.task = data::TaskType::kRegression;
  EXPECT_EQ(LinearSvm(options).task(), data::TaskType::kRegression);
  EXPECT_EQ(LinearSvm().task(), data::TaskType::kClassification);
}

TEST(LinearSvmTest, ErrorsOnBadInput) {
  LinearSvm model;
  data::DataFrame x;
  ASSERT_TRUE(x.AddColumn(data::Column("f", {1, 2})).ok());
  EXPECT_FALSE(model.Fit(x, {1.0}).ok());
  EXPECT_FALSE(model.Predict(x).ok());
}

}  // namespace
}  // namespace eafe::ml
