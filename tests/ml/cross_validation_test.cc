#include "ml/cross_validation.h"

#include <gtest/gtest.h>

#include "ml/random_forest.h"
#include "tests/ml/test_util.h"

namespace eafe::ml {
namespace {

using testing::MakeSeparable;
using testing::MakeSmoothRegression;

ModelFactory RfFactory(data::TaskType task) {
  return [task] {
    RandomForest::Options options;
    options.task = task;
    options.num_trees = 8;
    options.max_depth = 6;
    return std::make_unique<RandomForest>(options);
  };
}

TEST(CrossValidationTest, HighScoreOnEasyClassification) {
  const data::Dataset dataset = MakeSeparable(300, 1);
  const double score =
      CrossValidateScore(RfFactory(dataset.task), dataset).ValueOrDie();
  EXPECT_GT(score, 0.85);
  EXPECT_LE(score, 1.0);
}

TEST(CrossValidationTest, RegressionScore) {
  const data::Dataset dataset = MakeSmoothRegression(300, 2);
  const double score =
      CrossValidateScore(RfFactory(dataset.task), dataset).ValueOrDie();
  EXPECT_GT(score, 0.5);
}

TEST(CrossValidationTest, PerFoldScoresMatchMean) {
  const data::Dataset dataset = MakeSeparable(200, 3);
  CvOptions options;
  options.folds = 4;
  const auto scores =
      CrossValidateScores(RfFactory(dataset.task), dataset, options)
          .ValueOrDie();
  ASSERT_EQ(scores.size(), 4u);
  double mean = 0.0;
  for (double s : scores) mean += s;
  mean /= 4.0;
  const double score =
      CrossValidateScore(RfFactory(dataset.task), dataset, options)
          .ValueOrDie();
  EXPECT_NEAR(score, mean, 1e-12);
}

TEST(CrossValidationTest, DeterministicGivenSeed) {
  const data::Dataset dataset = MakeSeparable(150, 4);
  CvOptions options;
  options.seed = 9;
  const double a =
      CrossValidateScore(RfFactory(dataset.task), dataset, options)
          .ValueOrDie();
  const double b =
      CrossValidateScore(RfFactory(dataset.task), dataset, options)
          .ValueOrDie();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(CrossValidationTest, ScoreChangesWithSeed) {
  const data::Dataset dataset = MakeSeparable(150, 4);
  CvOptions a_options;
  a_options.seed = 1;
  CvOptions b_options;
  b_options.seed = 2;
  const double a =
      CrossValidateScore(RfFactory(dataset.task), dataset, a_options)
          .ValueOrDie();
  const double b =
      CrossValidateScore(RfFactory(dataset.task), dataset, b_options)
          .ValueOrDie();
  // Different folds virtually always give (slightly) different scores.
  EXPECT_NE(a, b);
}

TEST(CrossValidationTest, StratifiedFallbackForTinyClasses) {
  // One class with fewer members than folds: falls back to plain K-fold
  // rather than failing.
  data::Dataset dataset = MakeSeparable(60, 5);
  for (size_t i = 0; i < dataset.labels.size(); ++i) {
    dataset.labels[i] = i < 58 ? 0.0 : 1.0;
  }
  CvOptions options;
  options.folds = 5;
  const auto score =
      CrossValidateScore(RfFactory(dataset.task), dataset, options);
  EXPECT_TRUE(score.ok()) << score.status().ToString();
}

TEST(CrossValidationTest, RejectsBadInputs) {
  const data::Dataset dataset = MakeSeparable(50, 6);
  CvOptions options;
  options.folds = 1;
  EXPECT_FALSE(
      CrossValidateScore(RfFactory(dataset.task), dataset, options).ok());
  EXPECT_FALSE(CrossValidateScore([]() -> std::unique_ptr<Model> {
                 return nullptr;
               },
                                  dataset)
                   .ok());
}

}  // namespace
}  // namespace eafe::ml
