#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "runtime/thread_pool.h"
#include "tests/ml/test_util.h"

namespace eafe::ml {
namespace {

using testing::LabelAccuracy;
using testing::MakeBlobs;
using testing::MakeSeparable;
using testing::MakeSmoothRegression;
using testing::MakeXor;

TEST(RandomForestTest, LearnsXor) {
  const data::Dataset dataset = MakeXor(400, 1);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(forest.num_trees(), 10u);
  const auto pred = forest.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.9);
}

TEST(RandomForestTest, MultiClassBlobs) {
  const data::Dataset dataset = MakeBlobs(300, 2);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(dataset.features, dataset.labels).ok());
  const auto pred = forest.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.95);
}

TEST(RandomForestTest, RegressionBeatsMeanBaseline) {
  const data::Dataset dataset = MakeSmoothRegression(500, 3);
  RandomForest::Options options;
  options.task = data::TaskType::kRegression;
  RandomForest forest(options);
  ASSERT_TRUE(forest.Fit(dataset.features, dataset.labels).ok());
  const auto pred = forest.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(OneMinusRae(dataset.labels, pred), 0.7);
}

TEST(RandomForestTest, PredictProbaBetweenZeroAndOne) {
  const data::Dataset dataset = MakeSeparable(200, 4);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(dataset.features, dataset.labels).ok());
  const auto proba = forest.PredictProba(dataset.features).ValueOrDie();
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // Probabilities track labels on easy data.
  double pos_mean = 0.0, neg_mean = 0.0;
  size_t pos = 0, neg = 0;
  for (size_t i = 0; i < proba.size(); ++i) {
    if (dataset.labels[i] == 1.0) {
      pos_mean += proba[i];
      ++pos;
    } else {
      neg_mean += proba[i];
      ++neg;
    }
  }
  EXPECT_GT(pos_mean / static_cast<double>(pos),
            neg_mean / static_cast<double>(neg));
}

TEST(RandomForestTest, FeatureImportancesNormalized) {
  const data::Dataset dataset = MakeSeparable(300, 5);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(dataset.features, dataset.labels).ok());
  const auto imp = forest.FeatureImportances();
  ASSERT_EQ(imp.size(), 3u);
  double sum = 0.0;
  for (double v : imp) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Noise column should be least important.
  EXPECT_GT(imp[0], imp[2]);
  EXPECT_GT(imp[1], imp[2]);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  const data::Dataset dataset = MakeXor(150, 6);
  RandomForest a, b;
  ASSERT_TRUE(a.Fit(dataset.features, dataset.labels).ok());
  ASSERT_TRUE(b.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(a.Predict(dataset.features).ValueOrDie(),
            b.Predict(dataset.features).ValueOrDie());
}

TEST(RandomForestTest, SeedChangesModel) {
  const data::Dataset dataset = MakeXor(150, 6);
  RandomForest::Options options;
  options.seed = 1;
  RandomForest a(options);
  options.seed = 2;
  RandomForest b(options);
  ASSERT_TRUE(a.Fit(dataset.features, dataset.labels).ok());
  ASSERT_TRUE(b.Fit(dataset.features, dataset.labels).ok());
  EXPECT_NE(a.PredictProba(dataset.features).ValueOrDie(),
            b.PredictProba(dataset.features).ValueOrDie());
}

TEST(RandomForestTest, SubsampleOption) {
  const data::Dataset dataset = MakeXor(200, 7);
  RandomForest::Options options;
  options.subsample = 0.5;
  RandomForest forest(options);
  ASSERT_TRUE(forest.Fit(dataset.features, dataset.labels).ok());
  const auto pred = forest.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(LabelAccuracy(dataset.labels, pred), 0.8);
}

TEST(RandomForestTest, RejectsBadOptions) {
  const data::Dataset dataset = MakeXor(50, 8);
  RandomForest::Options options;
  options.num_trees = 0;
  EXPECT_FALSE(
      RandomForest(options).Fit(dataset.features, dataset.labels).ok());
  options = RandomForest::Options();
  options.subsample = 0.0;
  EXPECT_FALSE(
      RandomForest(options).Fit(dataset.features, dataset.labels).ok());
}

TEST(RandomForestTest, FitIsIdenticalAcrossThreadCounts) {
  // Bootstrap samples and tree seeds are pre-drawn serially, so parallel
  // tree training must be bit-identical to the serial path.
  const data::Dataset dataset = MakeXor(200, 11);
  runtime::SetGlobalThreads(1);
  RandomForest serial;
  ASSERT_TRUE(serial.Fit(dataset.features, dataset.labels).ok());
  runtime::SetGlobalThreads(4);
  RandomForest parallel;
  ASSERT_TRUE(parallel.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(serial.Predict(dataset.features).ValueOrDie(),
            parallel.Predict(dataset.features).ValueOrDie());
  EXPECT_EQ(serial.PredictProba(dataset.features).ValueOrDie(),
            parallel.PredictProba(dataset.features).ValueOrDie());
  EXPECT_EQ(serial.FeatureImportances(), parallel.FeatureImportances());
  runtime::SetGlobalThreads(1);
}

TEST(RandomForestTest, FitIsIdenticalAcrossThreadCountsExactStrategy) {
  // Same contract for the exact reference backend (the forest default is
  // histogram, which the test above covers).
  const data::Dataset dataset = MakeXor(200, 11);
  RandomForest::Options options;
  options.split_strategy = SplitStrategy::kExact;
  runtime::SetGlobalThreads(1);
  RandomForest serial(options);
  ASSERT_TRUE(serial.Fit(dataset.features, dataset.labels).ok());
  runtime::SetGlobalThreads(4);
  RandomForest parallel(options);
  ASSERT_TRUE(parallel.Fit(dataset.features, dataset.labels).ok());
  EXPECT_EQ(serial.Predict(dataset.features).ValueOrDie(),
            parallel.Predict(dataset.features).ValueOrDie());
  EXPECT_EQ(serial.FeatureImportances(), parallel.FeatureImportances());
  runtime::SetGlobalThreads(1);
}

TEST(RandomForestTest, ErrorsBeforeFitAndOnMismatch) {
  RandomForest forest;
  const data::Dataset dataset = MakeXor(50, 9);
  EXPECT_FALSE(forest.Predict(dataset.features).ok());
  ASSERT_TRUE(forest.Fit(dataset.features, dataset.labels).ok());
  data::DataFrame narrow;
  ASSERT_TRUE(narrow.AddColumn(data::Column("x0", {0.0})).ok());
  EXPECT_FALSE(forest.Predict(narrow).ok());
}

}  // namespace
}  // namespace eafe::ml
