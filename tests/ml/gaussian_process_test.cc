#include "ml/gaussian_process.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.h"
#include "tests/ml/test_util.h"

namespace eafe::ml {
namespace {

using testing::MakeLinearRegression;
using testing::MakeSmoothRegression;

TEST(GaussianProcessTest, InterpolatesSmoothFunction) {
  const data::Dataset dataset = MakeSmoothRegression(200, 1, 0.01);
  GaussianProcessRegressor model;
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(OneMinusRae(dataset.labels, pred), 0.9);
}

TEST(GaussianProcessTest, GeneralizesToUnseenPoints) {
  const data::Dataset train = MakeSmoothRegression(200, 2, 0.01);
  const data::Dataset test = MakeSmoothRegression(100, 99, 0.01);
  GaussianProcessRegressor model;
  ASSERT_TRUE(model.Fit(train.features, train.labels).ok());
  const auto pred = model.Predict(test.features).ValueOrDie();
  EXPECT_GT(OneMinusRae(test.labels, pred), 0.75);
}

TEST(GaussianProcessTest, LinearTarget) {
  const data::Dataset dataset = MakeLinearRegression(150, 3);
  GaussianProcessRegressor model;
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(OneMinusRae(dataset.labels, pred), 0.9);
}

TEST(GaussianProcessTest, PredictsLabelMeanFarFromData) {
  const data::Dataset dataset = MakeLinearRegression(100, 4);
  GaussianProcessRegressor model;
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  // A point very far from the training distribution: RBF kernel decays to
  // zero, so the prediction reverts to the label mean.
  data::DataFrame far;
  ASSERT_TRUE(far.AddColumn(data::Column("x0", {100.0})).ok());
  ASSERT_TRUE(far.AddColumn(data::Column("x1", {100.0})).ok());
  const auto pred = model.Predict(far).ValueOrDie();
  double mean = 0.0;
  for (double y : dataset.labels) mean += y;
  mean /= static_cast<double>(dataset.labels.size());
  EXPECT_NEAR(pred[0], mean, 0.05);
}

TEST(GaussianProcessTest, SubsamplesOversizedTrainingSet) {
  GaussianProcessRegressor::Options options;
  options.max_training_rows = 50;
  GaussianProcessRegressor model(options);
  const data::Dataset dataset = MakeLinearRegression(200, 5);
  ASSERT_TRUE(model.Fit(dataset.features, dataset.labels).ok());
  // Still a usable model on the full data after internal subsampling.
  const auto pred = model.Predict(dataset.features).ValueOrDie();
  EXPECT_GT(OneMinusRae(dataset.labels, pred), 0.7);
}

TEST(GaussianProcessTest, HandlesDuplicateRows) {
  // Duplicate inputs make the kernel matrix singular without jitter.
  data::DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(
      data::Column("x", {1.0, 1.0, 2.0, 2.0, 3.0})).ok());
  GaussianProcessRegressor model;
  EXPECT_TRUE(model.Fit(frame, {1.0, 1.1, 2.0, 2.1, 3.0}).ok());
}

TEST(GaussianProcessTest, ErrorsOnBadInput) {
  GaussianProcessRegressor model;
  data::DataFrame x;
  ASSERT_TRUE(x.AddColumn(data::Column("f", {1, 2})).ok());
  EXPECT_FALSE(model.Fit(x, {1.0}).ok());
  EXPECT_FALSE(model.Predict(x).ok());
  EXPECT_EQ(model.task(), data::TaskType::kRegression);
}

}  // namespace
}  // namespace eafe::ml
